package asp

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseFacts(t *testing.T) {
	tests := []struct {
		name string
		give string
		want string
	}{
		{name: "propositional", give: "p.", want: "p."},
		{name: "unary", give: "p(a).", want: "p(a)."},
		{name: "integer arg", give: "p(3).", want: "p(3)."},
		{name: "negative integer arg", give: "p(-3).", want: "p(-3)."},
		{name: "multiple args", give: "edge(a, b).", want: "edge(a,b)."},
		{name: "compound arg", give: "p(f(a, 1)).", want: "p(f(a,1))."},
		{name: "nested compound", give: "p(f(g(x))).", want: "p(f(g(x)))."},
		{name: "quoted string", give: `token("permit").`, want: `token("permit").`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			prog, err := Parse(tt.give)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.give, err)
			}
			if len(prog.Rules) != 1 {
				t.Fatalf("got %d rules, want 1", len(prog.Rules))
			}
			if got := prog.Rules[0].String(); got != tt.want {
				t.Errorf("got %q, want %q", got, tt.want)
			}
		})
	}
}

func TestParseRules(t *testing.T) {
	tests := []struct {
		name string
		give string
		want string
	}{
		{
			name: "positive body",
			give: "p(X) :- q(X).",
			want: "p(X) :- q(X).",
		},
		{
			name: "negation as failure",
			give: "p(X) :- q(X), not r(X).",
			want: "p(X) :- q(X), not r(X).",
		},
		{
			name: "constraint",
			give: ":- p, q.",
			want: ":- p, q.",
		},
		{
			name: "comparison",
			give: "p(X) :- q(X), X > 3.",
			want: "p(X) :- q(X), X > 3.",
		},
		{
			name: "arithmetic in head",
			give: "p(X + 1) :- q(X).",
			want: "p((X + 1)) :- q(X).",
		},
		{
			name: "equality binder",
			give: "p(Y) :- q(X), Y = X * 2.",
			want: "p(Y) :- q(X), Y = (X * 2).",
		},
		{
			name: "choice rule",
			give: "{a; b} :- c.",
			want: "{a; b} :- c.",
		},
		{
			name: "bare choice",
			give: "{a; b; c}.",
			want: "{a; b; c}.",
		},
		{
			name: "not equal",
			give: ":- p(X), p(Y), X != Y.",
			want: ":- p(X), p(Y), X != Y.",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			prog, err := Parse(tt.give)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.give, err)
			}
			if len(prog.Rules) != 1 {
				t.Fatalf("got %d rules, want 1", len(prog.Rules))
			}
			if got := prog.Rules[0].String(); got != tt.want {
				t.Errorf("got %q, want %q", got, tt.want)
			}
		})
	}
}

func TestParseProgramMultipleRulesAndComments(t *testing.T) {
	src := `
% transitive closure
edge(a, b). edge(b, c).
path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
:- path(a, a). % no cycles through a
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Rules) != 5 {
		t.Fatalf("got %d rules, want 5", len(prog.Rules))
	}
	if !prog.Rules[0].IsFact() {
		t.Errorf("rule 0 should be a fact")
	}
	if !prog.Rules[4].IsConstraint() {
		t.Errorf("rule 4 should be a constraint")
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "missing dot", give: "p(a)"},
		{name: "unterminated string", give: `p("abc.`},
		{name: "stray colon", give: "p : q."},
		{name: "unexpected bang", give: "p ! q."},
		{name: "empty parens", give: "p()."},
		{name: "unclosed paren", give: "p(a."},
		{name: "annotation outside ASG mode", give: "p(a)@1 :- q."},
		{name: "unexpected char", give: "p(a) & q."},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.give); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tt.give)
			}
		})
	}
}

func TestParseAtomAndTerm(t *testing.T) {
	a, err := ParseAtom("permit(Subject, read)")
	if err != nil {
		t.Fatalf("ParseAtom: %v", err)
	}
	if a.Predicate != "permit" || len(a.Args) != 2 {
		t.Fatalf("unexpected atom %v", a)
	}
	if a.Ground() {
		t.Errorf("atom with variable should not be ground")
	}

	term, err := ParseTerm("f(a, g(X))")
	if err != nil {
		t.Fatalf("ParseTerm: %v", err)
	}
	c, ok := term.(Compound)
	if !ok || c.Functor != "f" {
		t.Fatalf("unexpected term %v", term)
	}

	if _, err := ParseAtom("p(a) q"); err == nil {
		t.Errorf("trailing input should fail")
	}
	if _, err := ParseTerm("f(a,"); err == nil {
		t.Errorf("truncated term should fail")
	}
}

func TestParseAnnotatedMangling(t *testing.T) {
	hook := func(a Atom, ann int, has bool) Atom {
		if has {
			a.Predicate = a.Predicate + "_at_" + string(rune('0'+ann))
		}
		return a
	}
	prog, err := ParseAnnotated("ok :- size(X)@1, X > 2.", hook)
	if err != nil {
		t.Fatalf("ParseAnnotated: %v", err)
	}
	body := prog.Rules[0].Body
	if body[0].Atom.Predicate != "size_at_1" {
		t.Errorf("annotation hook not applied: %v", body[0])
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Any parsed program, printed and re-parsed, prints identically.
	sources := []string{
		"p(a). q(b). r(X) :- p(X), not q(X).",
		"path(X,Z) :- edge(X,Y), path(Y,Z), X != Z.",
		"{in(X); out(X)} :- node(X).\n:- in(X), out(X).",
		"size(N + 1) :- size(N), N < 10.\nsize(0).",
		`decision("permit") :- role(dba), not blocked.`,
	}
	for _, src := range sources {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		printed := p1.String()
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of %q: %v", printed, err)
		}
		if p2.String() != printed {
			t.Errorf("round trip mismatch:\nfirst:  %q\nsecond: %q", printed, p2.String())
		}
	}
}

func TestLexerLineNumbers(t *testing.T) {
	_, err := Parse("p(a).\nq(b).\nr :- .")
	if err == nil {
		t.Fatal("want error")
	}
	var pe *ParseError
	if !errorsAs(err, &pe) {
		t.Fatalf("want *ParseError, got %T: %v", err, err)
	}
	if pe.Line != 3 {
		t.Errorf("error line = %d, want 3", pe.Line)
	}
}

func errorsAs(err error, target **ParseError) bool {
	for err != nil {
		if pe, ok := err.(*ParseError); ok {
			*target = pe
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestTermKeyInjective checks via quick that distinct generated terms get
// distinct keys and equal terms equal keys.
func TestTermKeyInjective(t *testing.T) {
	gen := func(seed uint8, depth uint8) Term {
		return genTerm(int(seed), int(depth)%3)
	}
	f := func(s1, d1, s2, d2 uint8) bool {
		t1 := gen(s1, d1)
		t2 := gen(s2, d2)
		k1, k2 := TermKey(t1), TermKey(t2)
		if t1.String() == t2.String() {
			return k1 == k2
		}
		return k1 != k2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func genTerm(seed, depth int) Term {
	if depth <= 0 {
		switch seed % 3 {
		case 0:
			return Integer{Value: seed % 7}
		case 1:
			return Constant{Name: "c" + string(rune('a'+seed%5))}
		default:
			return Constant{Name: "d" + string(rune('a'+seed%4))}
		}
	}
	return Compound{
		Functor: "f" + string(rune('a'+seed%3)),
		Args:    []Term{genTerm(seed/2, depth-1), genTerm(seed/3, depth-1)},
	}
}

func TestAtomSubstituteAndVariables(t *testing.T) {
	a, err := ParseAtom("p(X, f(Y), a)")
	if err != nil {
		t.Fatal(err)
	}
	vars := a.Variables()
	if len(vars) != 2 {
		t.Fatalf("got vars %v, want X and Y", vars)
	}
	b := Binding{"X": Integer{Value: 1}, "Y": Constant{Name: "z"}}
	got := a.Substitute(b)
	if got.String() != "p(1,f(z),a)" {
		t.Errorf("substitute got %q", got.String())
	}
	if !got.Ground() {
		t.Errorf("substituted atom should be ground")
	}
	// Original unchanged.
	if a.Ground() {
		t.Errorf("original mutated by Substitute")
	}
}

func TestEvalCmp(t *testing.T) {
	tests := []struct {
		give string
		want bool
	}{
		{give: "1 < 2", want: true},
		{give: "2 < 1", want: false},
		{give: "2 <= 2", want: true},
		{give: "3 > 2", want: true},
		{give: "3 >= 4", want: false},
		{give: "a = a", want: true},
		{give: "a != b", want: true},
		{give: "1 + 2 = 3", want: true},
		{give: "2 * 3 > 5", want: true},
		{give: "7 \\ 3 = 1", want: true},
		{give: "7 / 2 = 3", want: true},
		{give: "a < b", want: true}, // lexicographic on constants
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			r, err := ParseRule(":- " + tt.give + ".")
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			got, err := EvalCmp(r.Body[0])
			if err != nil {
				t.Fatalf("EvalCmp: %v", err)
			}
			if got != tt.want {
				t.Errorf("EvalCmp(%q) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestEvalArithErrors(t *testing.T) {
	if _, err := EvalArith(Arith{Op: OpDiv, L: Integer{Value: 1}, R: Integer{Value: 0}}); err == nil {
		t.Error("division by zero should fail")
	}
	if _, err := EvalArith(Arith{Op: OpAdd, L: Constant{Name: "a"}, R: Integer{Value: 1}}); err == nil {
		t.Error("arithmetic over constants should fail")
	}
	if _, err := EvalArith(Arith{Op: OpMod, L: Integer{Value: 5}, R: Integer{Value: 0}}); err == nil {
		t.Error("modulo by zero should fail")
	}
}

func TestProgramPredicates(t *testing.T) {
	prog, err := Parse("p(X) :- q(X, Y), not r(Y).\n{s}.")
	if err != nil {
		t.Fatal(err)
	}
	preds := prog.Predicates()
	for _, want := range []string{"p/1", "q/2", "r/1", "s/0"} {
		if _, ok := preds[want]; !ok {
			t.Errorf("missing predicate %s in %v", want, preds)
		}
	}
}

func TestProgramCloneIsolation(t *testing.T) {
	p, err := Parse("a. b.")
	if err != nil {
		t.Fatal(err)
	}
	q := p.Clone()
	q.Add(Rule{Head: &Atom{Predicate: "c"}})
	if len(p.Rules) != 2 {
		t.Errorf("Clone not isolated: original has %d rules", len(p.Rules))
	}
	if len(q.Rules) != 3 {
		t.Errorf("clone has %d rules, want 3", len(q.Rules))
	}
}

func TestParseStringEscapes(t *testing.T) {
	prog, err := Parse(`p("a\"b").`)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := prog.Rules[0].Head.Args[0].(Constant)
	if !ok || c.Name != `a"b` {
		t.Errorf("got %#v", prog.Rules[0].Head.Args[0])
	}
	if !strings.Contains(prog.Rules[0].String(), `\"`) {
		t.Errorf("printed form should re-escape: %s", prog.Rules[0].String())
	}
}
