package asp

// The CDNL engine: conflict-driven nogood learning over the clause form
// built by compile.go. Two-watched-literal unit propagation, an
// activity-ordered decision heuristic (deterministic: ties break toward
// the lowest variable), 1UIP conflict analysis with backjumping and
// learned-clause recording, and — for non-tight programs — a
// source-pointer unfounded-set check that adds loop clauses. Answer
// sets are enumerated by recording a blocking clause over the decision
// literals of each model, so enumeration is deterministic and needs no
// chronological backtracking.
//
// The solver never mutates the CompiledProgram: the arena is copied
// into solver-private storage at init (learned, loop, and blocking
// clauses append to the same private arena), so one compiled program
// can serve concurrent solves.

// cdnlSolver holds the per-solve search state. It lives inside
// SolverScratch so repeated solves reuse every buffer.
type cdnlSolver struct {
	cp   *CompiledProgram
	g    *GroundProgram
	opts SolveOptions

	nVars int32

	arena  []int32   // private copy of active clauses + learned clauses
	watch  [][]int32 // per literal: refs of clauses watching it
	assign []int8    // per var: vUnknown / vTrue / vFalse
	level  []int32   // per var: decision level of its assignment
	reason []int32   // per var: antecedent clause ref, -1 for decisions

	trail    []int32
	trailLim []int32 // trail length at each decision level
	qhead    int32

	activity []float64
	varInc   float64
	heap     []int32 // max-heap of atom variables by activity
	heapPos  []int32 // per var: heap index, -1 if absent

	seen   []uint8
	learnt []int32

	models []*AnswerSet
	unsat  bool
	ctxErr error

	decisions, conflicts, propagations int64
	backjumps, learnedNogoods          int64

	// Unfounded-set machinery, built only for non-tight programs.
	hasCyclic bool
	cyc       []int32 // cyclic atom ids
	cycBodies []int32 // bodies supporting at least one cyclic atom
	bodyCnt   []int32 // per body: pending cyclic pos atoms (-1 = false body)
	cycPosCnt []int32 // per body: total cyclic pos atoms
	posInOff  []int32 // CSR: cyclic atom id -> bodies listing it positively
	posInBody []int32
	founded   []uint8 // per atom id
	sourcePtr []int32 // per atom id: witnessing body from the last lfp
	inU       []uint8 // per atom id: member of the current unfounded set
	bodyMark  []uint8 // per body: scratch marks
	ufQueue   []int32
	ufSet     []int32 // current unfounded set
	extBodies []int32 // external bodies of the current unfounded set
}

const ctxCheckMask = 0xFFF // context poll interval, in propagations

func (s *cdnlSolver) litTrue(l int32) bool {
	a := s.assign[l>>1]
	if a == vUnknown {
		return false
	}
	return (a == vTrue) == (l&1 == 0)
}

func (s *cdnlSolver) litFalse(l int32) bool {
	a := s.assign[l>>1]
	if a == vUnknown {
		return false
	}
	return (a == vTrue) == (l&1 == 1)
}

func (s *cdnlSolver) curLevel() int32 { return int32(len(s.trailLim)) }

// initCDNL readies the solver for one run over g's clause form.
func (s *cdnlSolver) init(g *GroundProgram, cp *CompiledProgram, opts SolveOptions) {
	s.g = g
	s.cp = cp
	s.opts = opts
	s.nVars = cp.nVars
	n := int(cp.nVars)

	// Private arena: copy the active clauses, dropping the flags word.
	s.arena = s.arena[:0]
	for ref := int32(0); ref < int32(len(cp.arena)); {
		size := cp.arena[ref]
		if cp.arena[ref+1]&clauseDisabled == 0 {
			s.arena = append(s.arena, size)
			s.arena = append(s.arena, cp.arena[ref+2:ref+2+size]...)
		}
		ref += size + 2
	}

	s.watch = growLists(s.watch, 2*n)
	s.assign = grow(s.assign, n)
	s.level = grow(s.level, n)
	s.reason = grow(s.reason, n)
	s.activity = grow(s.activity, n)
	s.seen = grow(s.seen, n)
	s.trail = s.trail[:0]
	s.trailLim = s.trailLim[:0]
	s.qhead = 0
	s.varInc = 1
	s.models = s.models[:0]
	s.unsat = false
	s.ctxErr = nil
	s.decisions, s.conflicts, s.propagations = 0, 0, 0
	s.backjumps, s.learnedNogoods = 0, 0

	// Decision heap: every atom variable, in id order (a valid heap at
	// uniform zero activity, so the first decisions run in id order).
	s.heapPos = grow(s.heapPos, n)
	for i := range s.heapPos {
		s.heapPos[i] = -1
	}
	s.heap = s.heap[:0]
	for v := int32(0); v < s.nVars; v++ {
		if cp.varAtom[v] >= 0 {
			s.heapPos[v] = int32(len(s.heap))
			s.heap = append(s.heap, v)
		}
	}

	// Watch clauses and enqueue units at level 0.
	for ref := int32(0); ref < int32(len(s.arena)); {
		size := s.arena[ref]
		if size == 1 {
			l := s.arena[ref+1]
			if s.litFalse(l) {
				s.unsat = true
				return
			}
			if !s.litTrue(l) {
				s.enqueue(l, ref)
			}
		} else {
			s.watch[s.arena[ref+1]] = append(s.watch[s.arena[ref+1]], ref)
			s.watch[s.arena[ref+2]] = append(s.watch[s.arena[ref+2]], ref)
		}
		ref += size + 1
	}

	s.initUnfounded(cp)
}

// initUnfounded builds the cyclic-atom indexes the unfounded-set check
// walks. Tight programs (the common case) skip all of it.
func (s *cdnlSolver) initUnfounded(cp *CompiledProgram) {
	s.hasCyclic = cp.nCyclic > 0
	if !s.hasCyclic {
		return
	}
	nA := int(cp.nAtoms)
	nB := int(cp.nBodies())
	s.cyc = s.cyc[:0]
	for a := 0; a < nA; a++ {
		if cp.cyclic[a] {
			s.cyc = append(s.cyc, int32(a))
		}
	}
	s.founded = grow(s.founded, nA)
	s.inU = grow(s.inU, nA)
	s.sourcePtr = grow(s.sourcePtr, nA)
	for i := range s.sourcePtr {
		s.sourcePtr[i] = -1
	}
	s.bodyCnt = grow(s.bodyCnt, nB)
	s.cycPosCnt = grow(s.cycPosCnt, nB)
	s.bodyMark = grow(s.bodyMark, nB)

	// Bodies supporting at least one cyclic atom, deduplicated.
	s.cycBodies = s.cycBodies[:0]
	for _, a := range s.cyc {
		for _, b := range cp.supports[a] {
			if s.bodyMark[b] == 0 {
				s.bodyMark[b] = 1
				s.cycBodies = append(s.cycBodies, b)
			}
		}
	}
	for _, b := range s.cycBodies {
		s.bodyMark[b] = 0
	}

	// Count cyclic positive atoms per body and build the reverse CSR
	// (cyclic atom -> bodies mentioning it positively).
	s.posInOff = grow(s.posInOff, nA+1)
	for _, b := range s.cycBodies {
		n := int32(0)
		for _, l := range cp.bodyLit[cp.bodyOff[b]:cp.bodyOff[b+1]] {
			if l&1 == 0 {
				if a := cp.varAtom[litVar(l)]; a >= 0 && cp.cyclic[a] {
					n++
					s.posInOff[a+1]++
				}
			}
		}
		s.cycPosCnt[b] = n
	}
	for a := 0; a < nA; a++ {
		s.posInOff[a+1] += s.posInOff[a]
	}
	total := int(s.posInOff[nA])
	if cap(s.posInBody) < total {
		s.posInBody = make([]int32, total)
	}
	s.posInBody = s.posInBody[:total]
	cursor := append([]int32(nil), s.posInOff[:nA]...)
	for _, b := range s.cycBodies {
		for _, l := range cp.bodyLit[cp.bodyOff[b]:cp.bodyOff[b+1]] {
			if l&1 == 0 {
				if a := cp.varAtom[litVar(l)]; a >= 0 && cp.cyclic[a] {
					s.posInBody[cursor[a]] = b
					cursor[a]++
				}
			}
		}
	}
}

func (s *cdnlSolver) enqueue(l int32, reason int32) {
	v := l >> 1
	if l&1 == 0 {
		s.assign[v] = vTrue
	} else {
		s.assign[v] = vFalse
	}
	s.level[v] = s.curLevel()
	s.reason[v] = reason
	s.trail = append(s.trail, l)
}

// propagate runs unit propagation to fixpoint, returning the ref of a
// conflicting clause or -1.
func (s *cdnlSolver) propagate() int32 {
	for s.qhead < int32(len(s.trail)) {
		p := s.trail[s.qhead]
		s.qhead++
		s.propagations++
		if s.opts.Context != nil && s.propagations&ctxCheckMask == 0 {
			if err := s.opts.Context.Err(); err != nil {
				s.ctxErr = err
				return -1
			}
		}
		fl := p ^ 1 // the literal that just became false
		ws := s.watch[fl]
		j := 0
		for i := 0; i < len(ws); i++ {
			ref := ws[i]
			size := s.arena[ref]
			lits := s.arena[ref+1 : ref+1+size]
			if lits[0] == fl {
				lits[0], lits[1] = lits[1], lits[0]
			}
			if s.litTrue(lits[0]) {
				ws[j] = ref
				j++
				continue
			}
			moved := false
			for k := 2; k < int(size); k++ {
				if !s.litFalse(lits[k]) {
					lits[1], lits[k] = lits[k], lits[1]
					s.watch[lits[1]] = append(s.watch[lits[1]], ref)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			ws[j] = ref
			j++
			if s.litFalse(lits[0]) {
				// Conflict: keep the remaining watchers and bail.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watch[fl] = ws[:j]
				return ref
			}
			s.enqueue(lits[0], ref)
		}
		s.watch[fl] = ws[:j]
	}
	return -1
}

func (s *cdnlSolver) bumpActivity(v int32) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.heapPos[v] >= 0 {
		s.siftUp(s.heapPos[v])
	}
}

// heapLess orders the decision heap: higher activity first, lower
// variable id on ties (the determinism anchor).
func (s *cdnlSolver) heapLess(a, b int32) bool {
	if s.activity[a] != s.activity[b] {
		return s.activity[a] > s.activity[b]
	}
	return a < b
}

func (s *cdnlSolver) siftUp(i int32) {
	v := s.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !s.heapLess(v, s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		s.heapPos[s.heap[p]] = i
		i = p
	}
	s.heap[i] = v
	s.heapPos[v] = i
}

func (s *cdnlSolver) siftDown(i int32) {
	v := s.heap[i]
	n := int32(len(s.heap))
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && s.heapLess(s.heap[c+1], s.heap[c]) {
			c++
		}
		if !s.heapLess(s.heap[c], v) {
			break
		}
		s.heap[i] = s.heap[c]
		s.heapPos[s.heap[c]] = i
		i = c
	}
	s.heap[i] = v
	s.heapPos[v] = i
}

func (s *cdnlSolver) heapPush(v int32) {
	s.heapPos[v] = int32(len(s.heap))
	s.heap = append(s.heap, v)
	s.siftUp(s.heapPos[v])
}

func (s *cdnlSolver) heapPop() int32 {
	v := s.heap[0]
	s.heapPos[v] = -1
	last := s.heap[len(s.heap)-1]
	s.heap = s.heap[:len(s.heap)-1]
	if len(s.heap) > 0 {
		s.heap[0] = last
		s.heapPos[last] = 0
		s.siftDown(0)
	}
	return v
}

// backtrack unassigns everything above toLevel, returning atom vars to
// the decision heap.
func (s *cdnlSolver) backtrack(toLevel int32) {
	limit := int(s.trailLim[toLevel])
	for i := len(s.trail) - 1; i >= limit; i-- {
		v := s.trail[i] >> 1
		s.assign[v] = vUnknown
		if s.cp.varAtom[v] >= 0 && s.heapPos[v] < 0 {
			s.heapPush(v)
		}
	}
	s.trail = s.trail[:limit]
	s.trailLim = s.trailLim[:toLevel]
	s.qhead = int32(len(s.trail))
}

// addClause appends lits to the private arena (watching the first two
// literals when binary or longer) and returns its ref.
func (s *cdnlSolver) addClause(lits []int32) int32 {
	ref := int32(len(s.arena))
	s.arena = append(s.arena, int32(len(lits)))
	s.arena = append(s.arena, lits...)
	if len(lits) >= 2 {
		s.watch[lits[0]] = append(s.watch[lits[0]], ref)
		s.watch[lits[1]] = append(s.watch[lits[1]], ref)
	}
	return ref
}

// analyze derives the 1UIP clause from a conflict. The learned clause
// lands in s.learnt with the asserting literal first and a literal of
// the backjump level second; it returns the backjump level.
func (s *cdnlSolver) analyze(confl int32) int32 {
	s.learnt = s.learnt[:0]
	s.learnt = append(s.learnt, -1) // asserting literal placeholder
	counter := 0
	p := int32(-1)
	idx := len(s.trail) - 1
	ref := confl
	for {
		size := s.arena[ref]
		lits := s.arena[ref+1 : ref+1+size]
		start := 0
		if p >= 0 {
			start = 1 // lits[0] is the propagated literal itself
		}
		for _, q := range lits[start:] {
			v := q >> 1
			if s.seen[v] == 0 && s.level[v] > 0 {
				s.seen[v] = 1
				s.bumpActivity(v)
				if s.level[v] == s.curLevel() {
					counter++
				} else {
					s.learnt = append(s.learnt, q)
				}
			}
		}
		for s.seen[s.trail[idx]>>1] == 0 {
			idx--
		}
		p = s.trail[idx]
		v := p >> 1
		s.seen[v] = 0
		idx--
		counter--
		if counter == 0 {
			s.learnt[0] = p ^ 1
			break
		}
		ref = s.reason[v]
	}
	// Clear marks and find the backjump level (max level in the tail),
	// moving one of its literals to the second watch position.
	back := int32(0)
	backIdx := -1
	for i := 1; i < len(s.learnt); i++ {
		v := s.learnt[i] >> 1
		s.seen[v] = 0
		if s.level[v] > back {
			back = s.level[v]
			backIdx = i
		}
	}
	if backIdx > 1 {
		s.learnt[1], s.learnt[backIdx] = s.learnt[backIdx], s.learnt[1]
	}
	s.varInc *= 1.0 / 0.95
	return back
}

// handleConflict learns the 1UIP clause, backjumps, and asserts.
func (s *cdnlSolver) handleConflict(confl int32) {
	back := s.analyze(confl)
	if back < s.curLevel()-1 {
		s.backjumps++
	}
	s.backtrack(back)
	ref := s.addClause(s.learnt)
	s.learnedNogoods++
	s.enqueue(s.learnt[0], ref)
}

// sourcesOK reports whether every non-false cyclic atom still has a
// non-false source body from the last founded-set fixpoint. While it
// holds, the expensive recomputation is skipped: the source graph of a
// full fixpoint is acyclic, and backtracking only turns assignments
// back to unknown, which keeps non-false bodies non-false.
func (s *cdnlSolver) sourcesOK() bool {
	cp := s.cp
	for _, a := range s.cyc {
		if s.assign[cp.atomVar[a]] == vFalse {
			continue
		}
		sp := s.sourcePtr[a]
		if sp < 0 || s.assign[cp.bodyVarID[sp]] == vFalse {
			return false
		}
	}
	return true
}

// computeFounded runs the founded-set fixpoint over the cyclic atoms:
// an atom is founded once some supporting body is not assigned false
// and has all of its cyclic positive atoms founded. Source pointers
// record the witnessing body.
func (s *cdnlSolver) computeFounded() {
	cp := s.cp
	for _, a := range s.cyc {
		s.founded[a] = 0
		s.sourcePtr[a] = -1
	}
	s.ufQueue = s.ufQueue[:0]
	found := func(b int32) {
		for _, h := range cp.heads[b] {
			if cp.cyclic[h] && s.founded[h] == 0 {
				s.founded[h] = 1
				s.sourcePtr[h] = b
				s.ufQueue = append(s.ufQueue, h)
			}
		}
	}
	for _, b := range s.cycBodies {
		if s.assign[cp.bodyVarID[b]] == vFalse {
			s.bodyCnt[b] = -1
			continue
		}
		s.bodyCnt[b] = s.cycPosCnt[b]
		if s.bodyCnt[b] == 0 {
			found(b)
		}
	}
	for qi := 0; qi < len(s.ufQueue); qi++ {
		a := s.ufQueue[qi]
		for _, b := range s.posInBody[s.posInOff[a]:s.posInOff[a+1]] {
			if s.bodyCnt[b] <= 0 {
				continue
			}
			s.bodyCnt[b]--
			if s.bodyCnt[b] == 0 {
				found(b)
			}
		}
	}
}

// unfoundedCheck falsifies unfounded cyclic atoms via loop clauses.
// It returns the ref of a conflicting loop clause (an unfounded atom
// already assigned true) or -1, plus whether any literal was enqueued
// (the caller must re-propagate).
func (s *cdnlSolver) unfoundedCheck() (int32, bool) {
	if s.sourcesOK() {
		return -1, false
	}
	s.computeFounded()
	cp := s.cp
	s.ufSet = s.ufSet[:0]
	for _, a := range s.cyc {
		if s.founded[a] == 0 && s.assign[cp.atomVar[a]] != vFalse {
			s.ufSet = append(s.ufSet, a)
			s.inU[a] = 1
		}
	}
	if len(s.ufSet) == 0 {
		return -1, false
	}
	// External bodies of U: bodies of rules with head in U and no
	// positive atom in U. The fixpoint guarantees they are all false
	// here (a non-false external body would have founded its heads),
	// and the loop clause (¬a ∨ ext1 ∨ ... ∨ extk) is valid for every
	// stable model, so it can be recorded permanently for this run.
	s.extBodies = s.extBodies[:0]
	for _, a := range s.ufSet {
		for _, b := range cp.supports[a] {
			if s.bodyMark[b] != 0 {
				continue
			}
			s.bodyMark[b] = 1
			internal := false
			for _, l := range cp.bodyLit[cp.bodyOff[b]:cp.bodyOff[b+1]] {
				if l&1 == 0 {
					if at := cp.varAtom[litVar(l)]; at >= 0 && s.inU[at] != 0 {
						internal = true
						break
					}
				}
			}
			if !internal {
				s.extBodies = append(s.extBodies, b)
			}
		}
	}
	for _, a := range s.ufSet {
		for _, b := range cp.supports[a] {
			s.bodyMark[b] = 0
		}
	}

	conflict := int32(-1)
	changed := false
	for _, a := range s.ufSet {
		s.inU[a] = 0
		if conflict >= 0 {
			continue
		}
		av := cp.atomVar[a]
		// Loop clause: lits[0] is ¬a; the second slot holds the
		// highest-level external body literal so the watches behave
		// after backjumping.
		s.learnt = s.learnt[:0]
		s.learnt = append(s.learnt, nLit(av))
		maxIdx := -1
		var maxLvl int32 = -1
		for _, b := range s.extBodies {
			bv := cp.bodyVarID[b]
			s.learnt = append(s.learnt, pLit(bv))
			if s.level[bv] > maxLvl {
				maxLvl = s.level[bv]
				maxIdx = len(s.learnt) - 1
			}
		}
		if maxIdx > 1 {
			s.learnt[1], s.learnt[maxIdx] = s.learnt[maxIdx], s.learnt[1]
		}
		ref := s.addClause(s.learnt)
		s.learnedNogoods++
		if s.assign[av] == vTrue {
			conflict = ref
		} else if s.assign[av] == vUnknown {
			s.enqueue(nLit(av), ref)
			changed = true
		}
	}
	return conflict, changed
}

// pickBranch pops the highest-activity unassigned atom variable, or -1
// when every atom is assigned (a model).
func (s *cdnlSolver) pickBranch() int32 {
	for len(s.heap) > 0 {
		v := s.heapPop()
		if s.assign[v] == vUnknown {
			return v
		}
	}
	return -1
}

func (s *cdnlSolver) recordModel() {
	atoms := make([]Atom, 0, 16)
	cp := s.cp
	for a := int32(0); a < cp.nAtoms; a++ {
		if s.assign[cp.atomVar[a]] == vTrue && !isInternalAtom(s.g.Atoms[a]) {
			atoms = append(atoms, s.g.Atoms[a])
		}
	}
	s.models = append(s.models, NewAnswerSet(atoms...))
}

// blockModel records a blocking clause over the decision literals of
// the model just found and backtracks one level, asserting the negation
// of the last decision. The propagation-closed assignment is unique per
// decision set, so this enumerates each answer set exactly once.
func (s *cdnlSolver) blockModel() {
	k := s.curLevel()
	s.learnt = s.learnt[:0]
	last := s.trail[s.trailLim[k-1]]
	s.learnt = append(s.learnt, last^1)
	for i := k - 2; i >= 0; i-- {
		s.learnt = append(s.learnt, s.trail[s.trailLim[i]]^1)
	}
	s.backtrack(k - 1)
	ref := s.addClause(s.learnt)
	s.enqueue(s.learnt[0], ref)
}

// run enumerates answer sets until MaxModels, exhaustion, or a budget
// error.
func (s *cdnlSolver) run() error {
	if s.unsat {
		return nil
	}
	ctx := s.opts.Context
	for {
		confl := s.propagate()
		if s.ctxErr != nil {
			return s.ctxErr
		}
		if confl < 0 && s.hasCyclic {
			var changed bool
			confl, changed = s.unfoundedCheck()
			if confl < 0 && changed {
				continue
			}
		}
		if confl >= 0 {
			s.conflicts++
			if s.curLevel() == 0 {
				return nil
			}
			s.handleConflict(confl)
			continue
		}
		v := s.pickBranch()
		if v < 0 {
			s.recordModel()
			if s.opts.MaxModels > 0 && len(s.models) >= s.opts.MaxModels {
				return nil
			}
			if s.curLevel() == 0 {
				return nil
			}
			s.blockModel()
			continue
		}
		s.decisions++
		if s.opts.MaxDecisions > 0 && s.decisions > s.opts.MaxDecisions {
			return ErrSearchBudget
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		s.enqueue(nLit(v), -1)
	}
}
