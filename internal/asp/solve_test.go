package asp

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"
)

func solveSrc(t *testing.T, src string, opts SolveOptions) []*AnswerSet {
	t.Helper()
	models, err := Solve(mustParse(t, src), opts)
	if err != nil {
		t.Fatalf("Solve(%q): %v", src, err)
	}
	return models
}

// modelStrings renders sorted model strings for comparison.
func modelStrings(models []*AnswerSet) []string {
	out := make([]string, len(models))
	for i, m := range models {
		out[i] = m.String()
	}
	sort.Strings(out)
	return out
}

func TestSolveDefiniteProgram(t *testing.T) {
	models := solveSrc(t, `
		edge(a, b). edge(b, c).
		path(X, Y) :- edge(X, Y).
		path(X, Z) :- edge(X, Y), path(Y, Z).
	`, SolveOptions{})
	if len(models) != 1 {
		t.Fatalf("definite program must have exactly one answer set, got %d", len(models))
	}
	m := models[0]
	for _, want := range []string{"path(a,b)", "path(b,c)", "path(a,c)"} {
		a, _ := ParseAtom(want)
		if !m.Contains(a) {
			t.Errorf("answer set missing %s: %s", want, m)
		}
	}
	if m.Len() != 5 {
		t.Errorf("answer set size = %d, want 5 (2 edges + 3 paths)", m.Len())
	}
}

func TestSolveNegationTwoModels(t *testing.T) {
	// Classic even/odd: a :- not b. b :- not a.
	models := solveSrc(t, "a :- not b. b :- not a.", SolveOptions{})
	if len(models) != 2 {
		t.Fatalf("got %d models, want 2", len(models))
	}
	got := modelStrings(models)
	want := []string{"{a}", "{b}"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("models = %v, want %v", got, want)
		}
	}
}

func TestSolveNoModelConstraint(t *testing.T) {
	models := solveSrc(t, "a. :- a.", SolveOptions{})
	if len(models) != 0 {
		t.Fatalf("got %d models, want 0", len(models))
	}
}

func TestSolveUnsupportedLoopHasNoExtraModel(t *testing.T) {
	// p :- p has the single answer set {} (p is unfounded).
	models := solveSrc(t, "p :- p.", SolveOptions{})
	if len(models) != 1 {
		t.Fatalf("got %d models, want 1", len(models))
	}
	if models[0].Len() != 0 {
		t.Errorf("answer set should be empty, got %s", models[0])
	}
}

func TestSolveEvenLoopThroughNegation(t *testing.T) {
	// p :- not q. q :- not p. r :- p. r :- q.
	models := solveSrc(t, "p :- not q. q :- not p. r :- p. r :- q.", SolveOptions{})
	if len(models) != 2 {
		t.Fatalf("got %d models, want 2", len(models))
	}
	for _, m := range models {
		a, _ := ParseAtom("r")
		if !m.Contains(a) {
			t.Errorf("r should hold in every model, got %s", m)
		}
	}
}

func TestSolveOddLoopNoModel(t *testing.T) {
	// p :- not p. has no answer set.
	models := solveSrc(t, "p :- not p.", SolveOptions{})
	if len(models) != 0 {
		t.Fatalf("odd loop: got %d models, want 0", len(models))
	}
}

func TestSolveOddLoopEscaped(t *testing.T) {
	// p :- not p. p :- q. q. — p is forced by q, so {p, q} is stable.
	models := solveSrc(t, "p :- not p. p :- q. q.", SolveOptions{})
	if len(models) != 1 {
		t.Fatalf("got %d models, want 1", len(models))
	}
	p, _ := ParseAtom("p")
	q, _ := ParseAtom("q")
	if !models[0].Contains(p) || !models[0].Contains(q) {
		t.Errorf("model = %s, want {p, q}", models[0])
	}
}

func TestSolveChoiceRule(t *testing.T) {
	models := solveSrc(t, "node(a). node(b). {in(X)} :- node(X).", SolveOptions{})
	if len(models) != 4 {
		t.Fatalf("got %d models, want 4 (all subsets)", len(models))
	}
	// No internal atoms leak.
	for _, m := range models {
		for _, a := range m.Atoms() {
			if isInternalAtom(a) {
				t.Errorf("internal atom leaked: %s", a)
			}
		}
	}
}

func TestSolveChoiceWithConstraint(t *testing.T) {
	models := solveSrc(t, `
		node(a). node(b). node(c).
		{in(X)} :- node(X).
		:- in(X), in(Y), X != Y.
	`, SolveOptions{})
	// At most one node chosen: {} plus 3 singletons.
	if len(models) != 4 {
		t.Fatalf("got %d models, want 4", len(models))
	}
}

func TestSolveGraphColoring(t *testing.T) {
	src := `
		node(a). node(b). node(c).
		edge(a, b). edge(b, c). edge(a, c).
		col(r). col(g). col(bl).
		{color(N, C)} :- node(N), col(C).
		hascolor(N) :- color(N, C).
		:- node(N), not hascolor(N).
		:- color(N, C1), color(N, C2), C1 != C2.
		:- edge(X, Y), color(X, C), color(Y, C).
	`
	models := solveSrc(t, src, SolveOptions{})
	// Triangle with 3 colors: 3! = 6 proper colorings.
	if len(models) != 6 {
		t.Fatalf("got %d colorings, want 6", len(models))
	}
	for _, m := range models {
		if len(m.AtomsOf("color")) != 3 {
			t.Errorf("each model must color 3 nodes: %s", m)
		}
	}
}

func TestSolveMaxModels(t *testing.T) {
	models := solveSrc(t, "node(a). node(b). node(c). {in(X)} :- node(X).", SolveOptions{MaxModels: 3})
	if len(models) != 3 {
		t.Fatalf("got %d models, want 3 (limited)", len(models))
	}
}

func TestSolveDecisionBudget(t *testing.T) {
	src := "node(1). node(2). node(3). node(4). node(5). node(6). node(7). node(8). {in(X)} :- node(X)."
	_, err := Solve(mustParse(t, src), SolveOptions{MaxDecisions: 5})
	if !errors.Is(err, ErrSearchBudget) {
		t.Fatalf("err = %v, want ErrSearchBudget", err)
	}
}

func TestSolveNaiveBranchingEquivalence(t *testing.T) {
	srcs := []string{
		"a :- not b. b :- not a.",
		"p :- not p.",
		"node(a). node(b). {in(X)} :- node(X). :- in(a), in(b).",
		"p :- q. q :- p. r :- not p.",
		"a :- not b. b :- not c. c :- not a.", // odd cycle of 3: no model
	}
	for _, src := range srcs {
		fast := solveSrc(t, src, SolveOptions{})
		naive := solveSrc(t, src, SolveOptions{NaiveBranching: true})
		f, n := modelStrings(fast), modelStrings(naive)
		if len(f) != len(n) {
			t.Errorf("%q: model counts differ fast=%v naive=%v", src, f, n)
			continue
		}
		for i := range f {
			if f[i] != n[i] {
				t.Errorf("%q: models differ: fast=%v naive=%v", src, f, n)
			}
		}
	}
}

func TestSolveConstraintWithNegation(t *testing.T) {
	// :- not p. forces p to be derivable.
	models := solveSrc(t, "p :- not q. q :- not p. :- not p.", SolveOptions{})
	if len(models) != 1 {
		t.Fatalf("got %d models, want 1", len(models))
	}
	p, _ := ParseAtom("p")
	if !models[0].Contains(p) {
		t.Errorf("model should contain p: %s", models[0])
	}
}

func TestSolveStratifiedNegation(t *testing.T) {
	models := solveSrc(t, `
		bird(tweety). bird(sam). penguin(sam).
		flies(X) :- bird(X), not penguin(X).
	`, SolveOptions{})
	if len(models) != 1 {
		t.Fatalf("stratified program: got %d models, want 1", len(models))
	}
	ft, _ := ParseAtom("flies(tweety)")
	fs, _ := ParseAtom("flies(sam)")
	if !models[0].Contains(ft) {
		t.Errorf("tweety should fly")
	}
	if models[0].Contains(fs) {
		t.Errorf("sam should not fly")
	}
}

func TestSolveHamiltonianPathSmall(t *testing.T) {
	// 3-node line graph: exactly 2 Hamiltonian paths (a-b-c, c-b-a).
	src := `
		node(a). node(b). node(c).
		edge(a, b). edge(b, a). edge(b, c). edge(c, b).
		{in(X, Y)} :- edge(X, Y).
		seen(X) :- in(X, Y).
		seen(Y) :- in(X, Y).
		:- node(N), not seen(N).
		:- in(X, Y), in(X, Z), Y != Z.
		:- in(X, Z), in(Y, Z), X != Y.
		:- in(X, Y), in(Y, X).
		count3 :- in(A, B), in(B, C), A != C.
		:- not count3.
	`
	models := solveSrc(t, src, SolveOptions{})
	if len(models) != 2 {
		t.Fatalf("got %d Hamiltonian paths, want 2", len(models))
	}
}

func TestAnswerSetAccessors(t *testing.T) {
	a1, _ := ParseAtom("p(1)")
	a2, _ := ParseAtom("p(2)")
	b, _ := ParseAtom("q(x)")
	as := NewAnswerSet(a1, a2, b)
	if as.Len() != 3 {
		t.Fatalf("Len = %d", as.Len())
	}
	ps := as.AtomsOf("p")
	if len(ps) != 2 || ps[0].String() != "p(1)" || ps[1].String() != "p(2)" {
		t.Errorf("AtomsOf(p) = %v", ps)
	}
	if got := as.String(); got != "{p(1), p(2), q(x)}" {
		t.Errorf("String = %q", got)
	}
	missing, _ := ParseAtom("r")
	if as.Contains(missing) {
		t.Errorf("Contains(r) should be false")
	}
}

// TestStabilityProperty: every model returned by the solver is verified
// as stable by an independent reduct check, on randomized small programs.
func TestStabilityProperty(t *testing.T) {
	f := func(seed uint16) bool {
		src := randomProgram(int(seed))
		prog, err := Parse(src)
		if err != nil {
			return false
		}
		g, err := Ground(prog, GroundingOptions{})
		if err != nil {
			return false
		}
		models, err := SolveGround(g, SolveOptions{})
		if err != nil {
			return false
		}
		for _, m := range models {
			if !verifyStable(g, m) {
				t.Logf("program:\n%s\nmodel %s is not stable", src, m)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// randomProgram builds a small propositional program from a seed using a
// deterministic generator over atoms a..e.
func randomProgram(seed int) string {
	atoms := []string{"a", "b", "c", "d", "e"}
	rng := seed
	next := func(n int) int {
		rng = (rng*1103515245 + 12345) & 0x7fffffff
		return rng % n
	}
	nRules := 2 + next(5)
	src := ""
	for i := 0; i < nRules; i++ {
		head := atoms[next(len(atoms))]
		nBody := next(3)
		rule := head
		if nBody > 0 {
			rule += " :- "
			for j := 0; j < nBody; j++ {
				if j > 0 {
					rule += ", "
				}
				if next(2) == 0 {
					rule += "not "
				}
				rule += atoms[next(len(atoms))]
			}
		}
		src += rule + ".\n"
	}
	return src
}

// verifyStable independently checks that m is a stable model of g: the
// least model of the reduct w.r.t. m equals m, and no constraint body is
// satisfied.
func verifyStable(g *GroundProgram, m *AnswerSet) bool {
	inModel := make([]bool, g.NumAtoms())
	for id, a := range g.Atoms {
		if m.Contains(a) {
			inModel[id] = true
		}
	}
	// Least model of reduct by naive iteration.
	derived := make([]bool, g.NumAtoms())
	changed := true
	for changed {
		changed = false
		for _, r := range g.Rules {
			if r.Head < 0 {
				continue
			}
			ok := true
			for _, a := range r.NegBody {
				if inModel[a] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, a := range r.PosBody {
				if !derived[a] {
					ok = false
					break
				}
			}
			if ok && !derived[r.Head] {
				derived[r.Head] = true
				changed = true
			}
		}
	}
	for id := range inModel {
		if isInternalAtom(g.Atoms[id]) {
			// Internal atoms are hidden from the model; the reduct check
			// below cannot compare them.
			continue
		}
		if inModel[id] != derived[id] {
			return false
		}
	}
	// Constraints.
	for _, r := range g.Rules {
		if r.Head >= 0 {
			continue
		}
		sat := true
		for _, a := range r.PosBody {
			if !derived[a] {
				sat = false
				break
			}
		}
		for _, a := range r.NegBody {
			if derived[a] {
				sat = false
				break
			}
		}
		if sat {
			return false
		}
	}
	return true
}

func TestHasAnswerSet(t *testing.T) {
	ok, err := HasAnswerSet(mustParse(t, "a :- not b."))
	if err != nil || !ok {
		t.Errorf("HasAnswerSet = %v, %v; want true, nil", ok, err)
	}
	ok, err = HasAnswerSet(mustParse(t, "p :- not p."))
	if err != nil || ok {
		t.Errorf("HasAnswerSet(odd loop) = %v, %v; want false, nil", ok, err)
	}
}

func TestSolveGroundEmptyProgram(t *testing.T) {
	g, err := Ground(NewProgram(), GroundingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	models, err := SolveGround(g, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models[0].Len() != 0 {
		t.Errorf("empty program should have exactly the empty answer set, got %v", models)
	}
}
