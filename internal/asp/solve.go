package asp

import (
	"errors"
	"sort"
)

// AnswerSet is a stable model: the set of true ground atoms.
type AnswerSet struct {
	atoms map[string]Atom
}

// NewAnswerSet builds an answer set from atoms.
func NewAnswerSet(atoms ...Atom) *AnswerSet {
	as := &AnswerSet{atoms: make(map[string]Atom, len(atoms))}
	for _, a := range atoms {
		as.atoms[a.Key()] = a
	}
	return as
}

// Contains reports whether the atom is in the answer set.
func (as *AnswerSet) Contains(a Atom) bool {
	_, ok := as.atoms[a.Key()]
	return ok
}

// Len returns the number of atoms.
func (as *AnswerSet) Len() int { return len(as.atoms) }

// Atoms returns the atoms sorted by their textual form.
func (as *AnswerSet) Atoms() []Atom {
	out := make([]Atom, 0, len(as.atoms))
	for _, a := range as.atoms {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// AtomsOf returns the atoms with the given predicate, sorted.
func (as *AnswerSet) AtomsOf(pred string) []Atom {
	var out []Atom
	for _, a := range as.atoms {
		if a.Predicate == pred {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

func (as *AnswerSet) String() string {
	atoms := as.Atoms()
	s := "{"
	for i, a := range atoms {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + "}"
}

// SolveOptions configures the solver.
type SolveOptions struct {
	// MaxModels bounds the number of answer sets returned (0 = all).
	MaxModels int

	// NaiveBranching branches over every atom instead of only atoms that
	// occur under negation. Exposed for the ablation benchmark; results
	// are identical but search is exponentially larger.
	NaiveBranching bool

	// MaxDecisions aborts the search after this many branching decisions
	// (0 = unlimited). Guards real-time callers (paper Section III.B).
	MaxDecisions int64
}

// ErrSearchBudget is returned when MaxDecisions is exhausted.
var ErrSearchBudget = errors.New("asp: solver decision budget exhausted")

// Solve grounds and solves a program, returning up to opts.MaxModels
// answer sets.
func Solve(p *Program, opts SolveOptions) ([]*AnswerSet, error) {
	g, err := Ground(p, GroundingOptions{})
	if err != nil {
		return nil, err
	}
	return SolveGround(g, opts)
}

// HasAnswerSet reports whether the program has at least one answer set.
func HasAnswerSet(p *Program) (bool, error) {
	models, err := Solve(p, SolveOptions{MaxModels: 1})
	if err != nil {
		return false, err
	}
	return len(models) > 0, nil
}

// SolveGround enumerates the stable models of a ground program.
//
// The search assigns truth values to "choice atoms" — atoms occurring in
// some negative body (plus every atom under NaiveBranching) — because the
// reduct, and hence the candidate stable model, is fully determined by
// that assignment: the remaining atoms take the least-model value. Each
// total assignment is verified by computing the least model of the reduct
// and checking (1) the assignment is reproduced and (2) no constraint
// body is satisfied.
func SolveGround(g *GroundProgram, opts SolveOptions) ([]*AnswerSet, error) {
	s := newSolver(g, opts)
	if err := s.run(); err != nil {
		return nil, err
	}
	return s.models, nil
}

const (
	vUnknown int8 = 0
	vTrue    int8 = 1
	vFalse   int8 = 2
)

type solver struct {
	g    *GroundProgram
	opts SolveOptions

	choice    []int // choice atom ids, branch order
	isChoice  []bool
	assign    []int8 // per atom id (only meaningful for choice atoms)
	models    []*AnswerSet
	decisions int64

	// rulesByNeg[a] lists rule indices with atom a in NegBody.
	rulesByNeg [][]int
	// definers[a] lists rule indices with Head == a.
	definers [][]int

	// scratch buffers for least-model computation.
	lmCount []int32
	lmTrue  []bool
	lmQueue []int

	// posWatch[a] lists rules having atom a in PosBody; posOccur[ri]
	// counts multiplicities per atom in rule ri's positive body.
	posWatch [][]int
	posOccur []map[int]int
}

func newSolver(g *GroundProgram, opts SolveOptions) *solver {
	n := g.NumAtoms()
	s := &solver{
		g:          g,
		opts:       opts,
		isChoice:   make([]bool, n),
		assign:     make([]int8, n),
		rulesByNeg: make([][]int, n),
		definers:   make([][]int, n),
		lmCount:    make([]int32, len(g.Rules)),
		lmTrue:     make([]bool, n),
	}
	occurrences := make([]int, n)
	for ri, r := range g.Rules {
		for _, a := range r.NegBody {
			s.rulesByNeg[a] = append(s.rulesByNeg[a], ri)
			if !s.isChoice[a] {
				s.isChoice[a] = true
			}
			occurrences[a]++
		}
		for _, a := range r.PosBody {
			occurrences[a]++
		}
		if r.Head >= 0 {
			s.definers[r.Head] = append(s.definers[r.Head], ri)
		}
	}
	if opts.NaiveBranching {
		for a := 0; a < n; a++ {
			s.isChoice[a] = true
		}
	}
	for a := 0; a < n; a++ {
		if s.isChoice[a] {
			s.choice = append(s.choice, a)
		}
	}
	// Branch on the most-constrained atoms first.
	sort.Slice(s.choice, func(i, j int) bool {
		return occurrences[s.choice[i]] > occurrences[s.choice[j]]
	})
	return s
}

func (s *solver) run() error {
	return s.search(0)
}

func (s *solver) budget() error {
	s.decisions++
	if s.opts.MaxDecisions > 0 && s.decisions > s.opts.MaxDecisions {
		return ErrSearchBudget
	}
	return nil
}

func (s *solver) search(depth int) error {
	if s.opts.MaxModels > 0 && len(s.models) >= s.opts.MaxModels {
		return nil
	}
	if depth == len(s.choice) {
		return s.checkLeaf()
	}
	if pruned := s.prune(); pruned {
		return nil
	}
	a := s.choice[depth]
	for _, v := range [2]int8{vFalse, vTrue} {
		if err := s.budget(); err != nil {
			return err
		}
		s.assign[a] = v
		if err := s.search(depth + 1); err != nil {
			s.assign[a] = vUnknown
			return err
		}
	}
	s.assign[a] = vUnknown
	return nil
}

// prune computes cheap under/over approximations of the derivable atoms
// under the current partial assignment and rejects branches that cannot
// lead to a stable model.
//
//   - under: least model using only rules whose negative atoms are all
//     assigned false (certain derivations). An under-derived atom assigned
//     false is a conflict.
//   - over: least model using rules whose negative atoms are not assigned
//     true (possible derivations). A choice atom assigned true that is not
//     over-derivable is a conflict.
func (s *solver) prune() bool {
	// The under-approximation is seeded with the atoms already assigned
	// true: any leaf completing this branch must reproduce them in its
	// least model, so everything derivable from them (through rules
	// whose negative bodies are already false) is certain. Seeding is
	// what lets constraint conflicts between assigned choice atoms
	// surface immediately (unit-propagation strength on e.g. coloring
	// programs).
	under := s.leastModelSeeded(func(r GroundRule) bool {
		for _, a := range r.NegBody {
			if s.assign[a] != vFalse {
				return false
			}
		}
		return true
	}, true)
	// NOTE: leastModel reuses a scratch buffer, so all checks against
	// `under` must complete before `over` is computed.
	for _, a := range s.choice {
		if s.assign[a] == vFalse && under[a] {
			return true
		}
	}
	// A constraint certainly violated: positive body all under-derived,
	// negative body all assigned false.
	for _, r := range s.g.Rules {
		if r.Head >= 0 {
			continue
		}
		violated := true
		for _, a := range r.PosBody {
			if !under[a] {
				violated = false
				break
			}
		}
		if !violated {
			continue
		}
		for _, a := range r.NegBody {
			if s.assign[a] != vFalse {
				violated = false
				break
			}
		}
		if violated {
			return true
		}
	}
	over := s.leastModel(func(r GroundRule) bool {
		for _, a := range r.NegBody {
			if s.assign[a] == vTrue {
				return false
			}
		}
		return true
	})
	for _, a := range s.choice {
		if s.assign[a] == vTrue && !over[a] {
			return true
		}
	}
	return false
}

// leastModel computes the least model of the definite program formed by
// the rules selected by keep (negative bodies are ignored once kept),
// using counter-based propagation. The returned slice is reused across
// calls; callers must not retain it.
func (s *solver) leastModel(keep func(GroundRule) bool) []bool {
	return s.leastModelSeeded(keep, false)
}

// leastModelSeeded is leastModel optionally seeded with the choice atoms
// currently assigned true (sound for pruning only; see prune).
func (s *solver) leastModelSeeded(keep func(GroundRule) bool, seedAssigned bool) []bool {
	for i := range s.lmTrue {
		s.lmTrue[i] = false
	}
	s.lmQueue = s.lmQueue[:0]
	if seedAssigned {
		for _, a := range s.choice {
			if s.assign[a] == vTrue {
				s.lmTrue[a] = true
				s.lmQueue = append(s.lmQueue, a)
			}
		}
	}
	for ri, r := range s.g.Rules {
		if r.Head < 0 || !keep(r) {
			s.lmCount[ri] = -1
			continue
		}
		s.lmCount[ri] = int32(len(r.PosBody))
		if s.lmCount[ri] == 0 && !s.lmTrue[r.Head] {
			s.lmTrue[r.Head] = true
			s.lmQueue = append(s.lmQueue, r.Head)
		}
	}
	// posWatchers built lazily per call would allocate; iterate rules per
	// derived atom via a prebuilt index instead.
	if s.posWatch == nil {
		s.buildPosWatch()
	}
	for qi := 0; qi < len(s.lmQueue); qi++ {
		a := s.lmQueue[qi]
		for _, ri := range s.posWatch[a] {
			if s.lmCount[ri] < 0 {
				continue
			}
			s.lmCount[ri] -= int32(s.posOccur[ri][a])
			if s.lmCount[ri] == 0 {
				h := s.g.Rules[ri].Head
				if h >= 0 && !s.lmTrue[h] {
					s.lmTrue[h] = true
					s.lmQueue = append(s.lmQueue, h)
				}
			}
		}
	}
	return s.lmTrue
}

func (s *solver) buildPosWatch() {
	n := s.g.NumAtoms()
	s.posWatch = make([][]int, n)
	s.posOccur = make([]map[int]int, len(s.g.Rules))
	for ri, r := range s.g.Rules {
		occ := make(map[int]int, len(r.PosBody))
		for _, a := range r.PosBody {
			occ[a]++
		}
		s.posOccur[ri] = occ
		for a := range occ {
			s.posWatch[a] = append(s.posWatch[a], ri)
		}
	}
}

// checkLeaf verifies the total assignment: computes the least model of
// the reduct, checks the assignment is reproduced, and checks all
// constraints.
func (s *solver) checkLeaf() error {
	lm := s.leastModel(func(r GroundRule) bool {
		for _, a := range r.NegBody {
			if s.assign[a] != vFalse {
				return false
			}
		}
		return true
	})
	for _, a := range s.choice {
		want := s.assign[a] == vTrue
		if lm[a] != want {
			return nil
		}
	}
	// Constraints: the body must not be satisfied by the model.
	for _, r := range s.g.Rules {
		if r.Head >= 0 {
			continue
		}
		sat := true
		for _, a := range r.PosBody {
			if !lm[a] {
				sat = false
				break
			}
		}
		if !sat {
			continue
		}
		for _, a := range r.NegBody {
			if lm[a] {
				sat = false
				break
			}
		}
		if sat {
			return nil // constraint violated
		}
	}
	atoms := make([]Atom, 0, 16)
	for id, t := range lm {
		if t && !isInternalAtom(s.g.Atoms[id]) {
			atoms = append(atoms, s.g.Atoms[id])
		}
	}
	s.models = append(s.models, NewAnswerSet(atoms...))
	return nil
}

// isInternalAtom hides atoms introduced by choice-rule compilation.
func isInternalAtom(a Atom) bool {
	return len(a.Predicate) > 0 && a.Predicate[0] == '_' &&
		len(a.Predicate) > 8 && a.Predicate[:8] == "_choice_"
}
