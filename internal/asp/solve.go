package asp

import (
	"context"
	"errors"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"agenp/internal/obs"
)

// AnswerSet is a stable model: the set of true ground atoms.
type AnswerSet struct {
	atoms map[string]Atom

	sortOnce sync.Once
	sorted   []Atom
}

// NewAnswerSet builds an answer set from atoms.
func NewAnswerSet(atoms ...Atom) *AnswerSet {
	as := &AnswerSet{atoms: make(map[string]Atom, len(atoms))}
	for _, a := range atoms {
		as.atoms[a.Key()] = a
	}
	return as
}

// Contains reports whether the atom is in the answer set.
func (as *AnswerSet) Contains(a Atom) bool {
	_, ok := as.atoms[a.Key()]
	return ok
}

// containsKey reports membership by a precomputed atom key (see
// appendTermKey / Atom.Key); the byte-slice map probe does not allocate.
func (as *AnswerSet) containsKey(k []byte) bool {
	_, ok := as.atoms[string(k)]
	return ok
}

// Len returns the number of atoms.
func (as *AnswerSet) Len() int { return len(as.atoms) }

// Atoms returns the atoms sorted by their textual form. The slice is
// computed once and shared across calls; callers must not modify it.
func (as *AnswerSet) Atoms() []Atom {
	as.sortOnce.Do(func() {
		type keyed struct {
			s string
			a Atom
		}
		ks := make([]keyed, 0, len(as.atoms))
		for _, a := range as.atoms {
			ks = append(ks, keyed{s: a.String(), a: a})
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i].s < ks[j].s })
		as.sorted = make([]Atom, len(ks))
		for i, k := range ks {
			as.sorted[i] = k.a
		}
	})
	return as.sorted
}

// AtomsOf returns the atoms with the given predicate, sorted.
func (as *AnswerSet) AtomsOf(pred string) []Atom {
	var out []Atom
	for _, a := range as.atoms {
		if a.Predicate == pred {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

func (as *AnswerSet) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, a := range as.Atoms() {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	sb.WriteByte('}')
	return sb.String()
}

// EngineKind selects the solving engine.
type EngineKind int

const (
	// EngineCDNL is the default: conflict-driven nogood learning over
	// the Clark-completion clause form (compile.go, cdnl.go).
	EngineCDNL EngineKind = iota
	// EngineDFS is the legacy chronological search kept as a
	// differential oracle for the CDNL engine (and for the
	// NaiveBranching ablation, which is a DFS-only concept).
	EngineDFS
)

// SolveOptions configures the solver.
type SolveOptions struct {
	// MaxModels bounds the number of answer sets returned (0 = all).
	MaxModels int

	// NaiveBranching branches over every atom instead of only atoms that
	// occur under negation. Exposed for the ablation benchmark; results
	// are identical but search is exponentially larger. Implies
	// EngineDFS: the CDNL engine has no guess-over-NAF phase to ablate.
	NaiveBranching bool

	// MaxDecisions aborts the search after this many branching decisions
	// (0 = unlimited). Guards real-time callers (paper Section III.B).
	MaxDecisions int64

	// Engine selects the solving engine; the zero value is EngineCDNL.
	Engine EngineKind

	// Context, when non-nil, cancels the search: the solver polls it on
	// every decision and periodically during propagation, returning the
	// context's error.
	Context context.Context
}

// ErrSearchBudget is returned when MaxDecisions is exhausted.
var ErrSearchBudget = errors.New("asp: solver decision budget exhausted")

// Solve grounds and solves a program, returning up to opts.MaxModels
// answer sets.
func Solve(p *Program, opts SolveOptions) ([]*AnswerSet, error) {
	g, err := Ground(p, GroundingOptions{})
	if err != nil {
		return nil, err
	}
	return SolveGround(g, opts)
}

// HasAnswerSet reports whether the program has at least one answer set.
func HasAnswerSet(p *Program) (bool, error) {
	models, err := Solve(p, SolveOptions{MaxModels: 1})
	if err != nil {
		return false, err
	}
	return len(models) > 0, nil
}

// SolveGround enumerates the stable models of a ground program.
//
// The search assigns truth values to "choice atoms" — atoms occurring in
// some negative body (plus every atom under NaiveBranching) — because the
// reduct, and hence the candidate stable model, is fully determined by
// that assignment: the remaining atoms take the least-model value. Each
// total assignment is verified by computing the least model of the reduct
// and checking (1) the assignment is reproduced and (2) no constraint
// body is satisfied.
func SolveGround(g *GroundProgram, opts SolveOptions) ([]*AnswerSet, error) {
	return SolveGroundScratch(g, opts, nil)
}

// scratchPool recycles solver scratch for callers that pass sc == nil
// (one-shot Solve / HasAnswerSet calls): the grown per-atom and
// per-clause buffers survive across unrelated solves instead of being
// reallocated per call.
var scratchPool = sync.Pool{New: func() any { return &SolverScratch{} }}

// SolveGroundScratch is SolveGround with caller-owned scratch buffers:
// repeated solves (the learner's per-example coverage checks) reuse the
// solver's per-atom and per-rule state instead of reallocating it each
// call. sc may be nil; a scratch must not be shared between concurrent
// solves.
func SolveGroundScratch(g *GroundProgram, opts SolveOptions, sc *SolverScratch) ([]*AnswerSet, error) {
	if sc == nil {
		sc = scratchPool.Get().(*SolverScratch)
		defer scratchPool.Put(sc)
	}
	if opts.Engine == EngineDFS || opts.NaiveBranching {
		return solveGroundDFS(g, opts, sc)
	}
	t0 := time.Now()
	sp := obs.StartSpan("asp.solve")
	s := &sc.cd
	s.init(g, g.clauseForm(), opts)
	err := s.run()
	statSolveCalls.Inc()
	statSolveDur.ObserveSince(t0)
	statDecisions.Add(s.decisions)
	statConflicts.Add(s.conflicts)
	statPropagations.Add(s.propagations)
	statBackjumps.Add(s.backjumps)
	statLearnedNogoods.Add(s.learnedNogoods)
	statModelsFound.Add(int64(len(s.models)))
	if obs.TracingEnabled() {
		sp.SetAttr("atoms", strconv.Itoa(g.NumAtoms()))
		sp.SetAttr("decisions", strconv.FormatInt(s.decisions, 10))
		sp.SetAttr("conflicts", strconv.FormatInt(s.conflicts, 10))
		sp.SetAttr("models", strconv.Itoa(len(s.models)))
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	// Detach the models from the scratch-resident slice so the next
	// solve on this scratch cannot alias them.
	models := make([]*AnswerSet, len(s.models))
	copy(models, s.models)
	return models, nil
}

// solveGroundDFS is the legacy chronological engine, retained as a
// differential oracle for the CDNL engine.
func solveGroundDFS(g *GroundProgram, opts SolveOptions, sc *SolverScratch) ([]*AnswerSet, error) {
	t0 := time.Now()
	sp := obs.StartSpan("asp.solve")
	s := newSolver(g, opts, sc)
	err := s.run()
	statSolveCalls.Inc()
	statSolveDur.ObserveSince(t0)
	statDecisions.Add(s.decisions)
	statConflicts.Add(s.conflicts)
	statPropagations.Add(s.propagations)
	statModelsFound.Add(int64(len(s.models)))
	if obs.TracingEnabled() {
		sp.SetAttr("atoms", strconv.Itoa(g.NumAtoms()))
		sp.SetAttr("decisions", strconv.FormatInt(s.decisions, 10))
		sp.SetAttr("conflicts", strconv.FormatInt(s.conflicts, 10))
		sp.SetAttr("models", strconv.Itoa(len(s.models)))
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	return s.models, nil
}

const (
	vUnknown int8 = 0
	vTrue    int8 = 1
	vFalse   int8 = 2
)

// posWatchEntry records that a rule has an atom in its positive body with
// the given multiplicity.
type posWatchEntry struct {
	rule int32
	mult int32
}

// SolverScratch holds the reusable buffers of SolveGroundScratch. One
// scratch serves any sequence of solves (buffers grow to the largest
// program seen) but must not be used by two solves concurrently.
type SolverScratch struct {
	isChoice    []bool
	assign      []int8
	lmTrue      []bool
	lmCount     []int32
	lmQueue     []int32
	occ         []int32
	choice      []int32
	constraints []int32
	posOff      []int32
	posNext     []int32
	posEnt      []posWatchEntry

	// cd holds the CDNL engine's state; its buffers are likewise reused
	// across solves.
	cd cdnlSolver
}

// grow returns s with length n and every element zeroed, reusing the
// backing array when it is large enough. It serves every per-atom,
// per-rule, and per-variable scratch slice in the solving core.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// growLists returns s with length n, emptying each inner slice while
// keeping its capacity (the shape watch lists want across solves).
func growLists(s [][]int32, n int) [][]int32 {
	if cap(s) < n {
		grown := make([][]int32, n)
		copy(grown, s)
		s = grown
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}

type solver struct {
	g    *GroundProgram
	opts SolveOptions
	sc   *SolverScratch

	choice    []int32 // choice atom ids, branch order
	isChoice  []bool
	assign    []int8 // per atom id (only meaningful for choice atoms)
	models    []*AnswerSet
	decisions int64

	// Per-run telemetry, flushed once by SolveGround: conflicts counts
	// pruned branches plus rejected leaves, propagations counts atoms
	// popped from the least-model queue.
	conflicts    int64
	propagations int64

	// constraints lists the indices of headless rules.
	constraints []int32

	// scratch buffers for least-model computation.
	lmCount []int32
	lmTrue  []bool
	lmQueue []int32

	// posWatch in CSR form: posEnt[posOff[a]:posOff[a+1]] lists the
	// (rule, multiplicity) pairs for rules having atom a in their
	// positive body. Two flat slices replace the per-atom slice-of-slices
	// of the original representation.
	posOff []int32
	posEnt []posWatchEntry
}

func newSolver(g *GroundProgram, opts SolveOptions, sc *SolverScratch) *solver {
	if sc == nil {
		sc = &SolverScratch{}
	}
	n := g.NumAtoms()
	sc.isChoice = grow(sc.isChoice, n)
	sc.assign = grow(sc.assign, n)
	sc.lmTrue = grow(sc.lmTrue, n)
	sc.lmCount = grow(sc.lmCount, len(g.Rules))
	sc.occ = grow(sc.occ, n)
	sc.choice = sc.choice[:0]
	sc.constraints = sc.constraints[:0]
	s := &solver{
		g:        g,
		opts:     opts,
		sc:       sc,
		isChoice: sc.isChoice,
		assign:   sc.assign,
		lmCount:  sc.lmCount,
		lmTrue:   sc.lmTrue,
		lmQueue:  sc.lmQueue[:0],
	}
	occurrences := sc.occ
	for ri := range g.Rules {
		r := &g.Rules[ri]
		for _, a := range r.NegBody {
			s.isChoice[a] = true
			occurrences[a]++
		}
		for _, a := range r.PosBody {
			occurrences[a]++
		}
		if r.Head < 0 {
			sc.constraints = append(sc.constraints, int32(ri))
		}
	}
	s.constraints = sc.constraints
	if opts.NaiveBranching {
		for a := 0; a < n; a++ {
			s.isChoice[a] = true
		}
	}
	for a := int32(0); a < int32(n); a++ {
		if s.isChoice[a] {
			sc.choice = append(sc.choice, a)
		}
	}
	s.choice = sc.choice
	// Branch on the most-constrained atoms first.
	sort.Slice(s.choice, func(i, j int) bool {
		return occurrences[s.choice[i]] > occurrences[s.choice[j]]
	})
	s.buildPosWatch()
	return s
}

func (s *solver) run() error {
	return s.search(0)
}

func (s *solver) budget() error {
	s.decisions++
	if s.opts.MaxDecisions > 0 && s.decisions > s.opts.MaxDecisions {
		return ErrSearchBudget
	}
	if s.opts.Context != nil && s.decisions&255 == 0 {
		if err := s.opts.Context.Err(); err != nil {
			return err
		}
	}
	return nil
}

func (s *solver) search(depth int) error {
	if s.opts.MaxModels > 0 && len(s.models) >= s.opts.MaxModels {
		return nil
	}
	if depth == len(s.choice) {
		return s.checkLeaf()
	}
	if pruned := s.prune(); pruned {
		s.conflicts++
		return nil
	}
	a := s.choice[depth]
	for _, v := range [2]int8{vFalse, vTrue} {
		if err := s.budget(); err != nil {
			return err
		}
		s.assign[a] = v
		if err := s.search(depth + 1); err != nil {
			s.assign[a] = vUnknown
			return err
		}
	}
	s.assign[a] = vUnknown
	return nil
}

// prune computes cheap under/over approximations of the derivable atoms
// under the current partial assignment and rejects branches that cannot
// lead to a stable model.
//
//   - under: least model using only rules whose negative atoms are all
//     assigned false (certain derivations). An under-derived atom assigned
//     false is a conflict.
//   - over: least model using rules whose negative atoms are not assigned
//     true (possible derivations). A choice atom assigned true that is not
//     over-derivable is a conflict.
func (s *solver) prune() bool {
	// The under-approximation is seeded with the atoms already assigned
	// true: any leaf completing this branch must reproduce them in its
	// least model, so everything derivable from them (through rules
	// whose negative bodies are already false) is certain. Seeding is
	// what lets constraint conflicts between assigned choice atoms
	// surface immediately (unit-propagation strength on e.g. coloring
	// programs).
	under := s.leastModelSeeded(func(r GroundRule) bool {
		for _, a := range r.NegBody {
			if s.assign[a] != vFalse {
				return false
			}
		}
		return true
	}, true)
	// NOTE: leastModel reuses a scratch buffer, so all checks against
	// `under` must complete before `over` is computed.
	for _, a := range s.choice {
		if s.assign[a] == vFalse && under[a] {
			return true
		}
	}
	// A constraint certainly violated: positive body all under-derived,
	// negative body all assigned false.
	for _, ci := range s.constraints {
		r := s.g.Rules[ci]
		violated := true
		for _, a := range r.PosBody {
			if !under[a] {
				violated = false
				break
			}
		}
		if !violated {
			continue
		}
		for _, a := range r.NegBody {
			if s.assign[a] != vFalse {
				violated = false
				break
			}
		}
		if violated {
			return true
		}
	}
	over := s.leastModel(func(r GroundRule) bool {
		for _, a := range r.NegBody {
			if s.assign[a] == vTrue {
				return false
			}
		}
		return true
	})
	for _, a := range s.choice {
		if s.assign[a] == vTrue && !over[a] {
			return true
		}
	}
	return false
}

// leastModel computes the least model of the definite program formed by
// the rules selected by keep (negative bodies are ignored once kept),
// using counter-based propagation. The returned slice is reused across
// calls; callers must not retain it.
func (s *solver) leastModel(keep func(GroundRule) bool) []bool {
	return s.leastModelSeeded(keep, false)
}

// leastModelSeeded is leastModel optionally seeded with the choice atoms
// currently assigned true (sound for pruning only; see prune).
func (s *solver) leastModelSeeded(keep func(GroundRule) bool, seedAssigned bool) []bool {
	for i := range s.lmTrue {
		s.lmTrue[i] = false
	}
	s.lmQueue = s.lmQueue[:0]
	if seedAssigned {
		for _, a := range s.choice {
			if s.assign[a] == vTrue {
				s.lmTrue[a] = true
				s.lmQueue = append(s.lmQueue, a)
			}
		}
	}
	for ri, r := range s.g.Rules {
		if r.Head < 0 || !keep(r) {
			s.lmCount[ri] = -1
			continue
		}
		s.lmCount[ri] = int32(len(r.PosBody))
		if s.lmCount[ri] == 0 && !s.lmTrue[r.Head] {
			s.lmTrue[r.Head] = true
			s.lmQueue = append(s.lmQueue, r.Head)
		}
	}
	for qi := 0; qi < len(s.lmQueue); qi++ {
		a := s.lmQueue[qi]
		for wi, end := s.posOff[a], s.posOff[a+1]; wi < end; wi++ {
			w := s.posEnt[wi]
			if s.lmCount[w.rule] < 0 {
				continue
			}
			s.lmCount[w.rule] -= w.mult
			if s.lmCount[w.rule] == 0 {
				h := s.g.Rules[w.rule].Head
				if h >= 0 && !s.lmTrue[h] {
					s.lmTrue[h] = true
					s.lmQueue = append(s.lmQueue, h)
				}
			}
		}
	}
	// Every queued atom was popped and propagated exactly once.
	s.propagations += int64(len(s.lmQueue))
	// Keep any capacity the queue grew for the next solve on this scratch.
	s.sc.lmQueue = s.lmQueue
	return s.lmTrue
}

func (s *solver) buildPosWatch() {
	n := s.g.NumAtoms()
	sc := s.sc
	sc.posOff = grow(sc.posOff, n+1)
	// Pass 1: bucket sizes. Each atom counts once per rule (multiplicity
	// is folded into the entry).
	for ri := range s.g.Rules {
		r := &s.g.Rules[ri]
		for bi, a := range r.PosBody {
			dup := false
			for _, prev := range r.PosBody[:bi] {
				if prev == a {
					dup = true
					break
				}
			}
			if !dup {
				sc.posOff[a+1]++
			}
		}
	}
	for a := 0; a < n; a++ {
		sc.posOff[a+1] += sc.posOff[a]
	}
	total := int(sc.posOff[n])
	if cap(sc.posEnt) < total {
		sc.posEnt = make([]posWatchEntry, total)
	}
	sc.posEnt = sc.posEnt[:total]
	// Pass 2: fill via per-atom cursors; rule order within a bucket
	// matches the original append order.
	sc.posNext = grow(sc.posNext, n)
	copy(sc.posNext, sc.posOff[:n])
	for ri := range s.g.Rules {
		r := &s.g.Rules[ri]
		for bi, a := range r.PosBody {
			dup := false
			for _, prev := range r.PosBody[:bi] {
				if prev == a {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			mult := int32(0)
			for _, other := range r.PosBody {
				if other == a {
					mult++
				}
			}
			sc.posEnt[sc.posNext[a]] = posWatchEntry{rule: int32(ri), mult: mult}
			sc.posNext[a]++
		}
	}
	s.posOff = sc.posOff
	s.posEnt = sc.posEnt
}

// checkLeaf verifies the total assignment: computes the least model of
// the reduct, checks the assignment is reproduced, and checks all
// constraints.
func (s *solver) checkLeaf() error {
	lm := s.leastModel(func(r GroundRule) bool {
		for _, a := range r.NegBody {
			if s.assign[a] != vFalse {
				return false
			}
		}
		return true
	})
	for _, a := range s.choice {
		want := s.assign[a] == vTrue
		if lm[a] != want {
			s.conflicts++
			return nil
		}
	}
	// Constraints: the body must not be satisfied by the model.
	for _, ci := range s.constraints {
		r := s.g.Rules[ci]
		sat := true
		for _, a := range r.PosBody {
			if !lm[a] {
				sat = false
				break
			}
		}
		if !sat {
			continue
		}
		for _, a := range r.NegBody {
			if lm[a] {
				sat = false
				break
			}
		}
		if sat {
			s.conflicts++
			return nil // constraint violated
		}
	}
	atoms := make([]Atom, 0, 16)
	for id, t := range lm {
		if t && !isInternalAtom(s.g.Atoms[id]) {
			atoms = append(atoms, s.g.Atoms[id])
		}
	}
	s.models = append(s.models, NewAnswerSet(atoms...))
	return nil
}

// isInternalAtom hides atoms introduced by choice-rule compilation.
func isInternalAtom(a Atom) bool {
	return len(a.Predicate) > 8 && a.Predicate[:8] == "_choice_"
}
