package asp

import (
	"fmt"
)

// EvalRule evaluates a single rule against a fixed interpretation: it
// returns every head instance derivable in one step, with positive body
// literals matched against the interpretation, negative literals checked
// absent from it, and comparisons evaluated. The rule must be safe.
//
// This is the workhorse of the learner's fast path for non-recursive
// hypothesis rules: when a candidate rule's body only references
// background-derived predicates, its contribution to an answer set is
// exactly EvalRule(r, AS(background ∪ context)).
//
// Callers evaluating many rules against the same model, or the same rule
// against many models, should use ModelIndex and EvalPrepared to amortize
// the per-call model indexing and safety check.
func EvalRule(r Rule, model *AnswerSet) ([]Atom, error) {
	return NewModelIndex(model).EvalRule(r)
}

// ModelIndex is a predicate-indexed view of an answer set for repeated
// one-step rule evaluation. Building the index walks the model once;
// every evaluation after that probes by predicate.
type ModelIndex struct {
	model  *AnswerSet
	byPred map[string][]Atom
}

// NewModelIndex indexes an answer set by predicate. Iteration follows the
// model's sorted atom order, so evaluation output is deterministic.
func NewModelIndex(m *AnswerSet) *ModelIndex {
	ix := &ModelIndex{model: m, byPred: make(map[string][]Atom)}
	for _, a := range m.Atoms() {
		ix.byPred[a.Predicate] = append(ix.byPred[a.Predicate], a)
	}
	return ix
}

// Model returns the indexed answer set.
func (ix *ModelIndex) Model() *AnswerSet { return ix.model }

// EvalRule checks the rule (no choice rules, safety) and evaluates it
// against the indexed model.
func (ix *ModelIndex) EvalRule(r Rule) ([]Atom, error) {
	if r.IsChoice() {
		return nil, fmt.Errorf("asp: EvalRule does not support choice rules")
	}
	if err := CheckSafety(r); err != nil {
		return nil, err
	}
	return ix.EvalPrepared(r)
}

// EvalPrepared evaluates a rule already known to be safe and not a choice
// rule (e.g. checked once by the caller before an evaluation loop).
func (ix *ModelIndex) EvalPrepared(r Rule) ([]Atom, error) {
	return NewEvaluator().EvalPrepared(ix, r)
}

// Evaluator owns the scratch state of one-step rule evaluation so that
// a loop of EvalPrepared calls allocates only for the derived head atoms
// it returns: a trail-based binding replaces the per-candidate map clone
// of matchAtom, done-flags over body literals replace the per-step
// remaining-slice rebuild, negative literals probe the model through a
// reusable key buffer, and derived heads are deduplicated by structural
// comparison instead of string keys.
//
// An Evaluator is not safe for concurrent use; give each worker its own.
type Evaluator struct {
	tr   bindTrail
	done []bool
	out  []Atom
	key  []byte
}

// NewEvaluator returns an Evaluator ready for EvalPrepared loops.
func NewEvaluator() *Evaluator {
	return &Evaluator{tr: bindTrail{b: make(Binding, 8)}}
}

// EvalPrepared evaluates a safe, non-choice rule against the indexed
// model. The returned slice is the Evaluator's reusable buffer: it is
// valid only until the next call; callers that retain atoms must copy
// them.
func (ev *Evaluator) EvalPrepared(ix *ModelIndex, r Rule) ([]Atom, error) {
	n := len(r.Body)
	if cap(ev.done) < n {
		ev.done = make([]bool, n)
	}
	ev.done = ev.done[:n]
	for i := range ev.done {
		ev.done[i] = false
	}
	ev.out = ev.out[:0]
	ev.tr.undo(0)
	if err := ev.step(ix, r, n); err != nil {
		return nil, err
	}
	return ev.out, nil
}

func (ev *Evaluator) step(ix *ModelIndex, r Rule, remaining int) error {
	if remaining == 0 {
		return ev.emit(r)
	}
	// Pick the next processable literal (same discipline as the
	// grounder: positive atoms enumerate, ready comparisons filter,
	// binder equalities bind, ground negatives check).
	b := ev.tr.b
	pick := -1
	kind := -1
	for i := range r.Body {
		if ev.done[i] {
			continue
		}
		l := &r.Body[i]
		switch {
		case !l.IsCmp && !l.Negated:
			if pick == -1 {
				pick, kind = i, 0
			}
		case l.IsCmp:
			if unboundVarCount(l.Lhs, b) == 0 && unboundVarCount(l.Rhs, b) == 0 {
				pick, kind = i, 2
			} else if l.Op == CmpEq {
				if _, _, ok := binderSides(*l, b); ok {
					pick, kind = i, 1
				}
			}
		default: // negated
			if pick == -1 {
				ground := true
				for _, t := range l.Atom.Args {
					if unboundVarCount(t, b) > 0 {
						ground = false
						break
					}
				}
				if ground {
					pick, kind = i, 3
				}
			}
		}
		if kind == 1 || kind == 2 {
			break
		}
	}
	if pick == -1 {
		return fmt.Errorf("asp: EvalRule stuck on rule %q", r.String())
	}
	l := r.Body[pick]
	ev.done[pick] = true
	defer func() { ev.done[pick] = false }()
	switch kind {
	case 0:
		facts := ix.byPred[l.Atom.Predicate]
		for fi := range facts {
			m := ev.tr.mark()
			if matchAtomTrail(l.Atom, facts[fi], &ev.tr) {
				if err := ev.step(ix, r, remaining-1); err != nil {
					ev.tr.undo(m)
					return err
				}
			}
			ev.tr.undo(m)
		}
		return nil
	case 1:
		v, expr, ok := binderSides(l, ev.tr.b)
		if !ok {
			return fmt.Errorf("asp: EvalRule lost binder equality in rule %q", r.String())
		}
		val, err := EvalArith(substTerm(expr, ev.tr.b))
		if err != nil {
			return err
		}
		m := ev.tr.mark()
		ev.tr.bind(v.Name, val)
		err = ev.step(ix, r, remaining-1)
		ev.tr.undo(m)
		return err
	case 2:
		ok, err := EvalCmp(Literal{IsCmp: true, Op: l.Op,
			Lhs: substTerm(l.Lhs, ev.tr.b), Rhs: substTerm(l.Rhs, ev.tr.b), Pos: l.Pos})
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		return ev.step(ix, r, remaining-1)
	default:
		// Ground negative literal: key the substituted, evaluated atom
		// into the reusable buffer and probe the model.
		key := append(ev.key[:0], l.Atom.Predicate...)
		key = append(key, '/')
		for _, t := range l.Atom.Args {
			val, err := EvalArith(substTerm(t, ev.tr.b))
			if err != nil {
				ev.key = key
				return err
			}
			key = appendTermKey(key, val)
			key = append(key, ';')
		}
		ev.key = key
		if ix.model.containsKey(key) {
			return nil
		}
		return ev.step(ix, r, remaining-1)
	}
}

// emit records the derived instance of a satisfied body: the
// substituted, evaluated head, or the _violated marker for constraints.
// Duplicates are dropped by structural comparison (derived sets are
// small; a linear scan beats keying every head).
func (ev *Evaluator) emit(r Rule) error {
	var atom Atom
	if r.Head == nil {
		// Constraint body satisfied: represent with a marker atom so
		// callers can detect violation.
		atom = Atom{Predicate: "_violated"}
	} else if len(r.Head.Args) == 0 {
		atom = *r.Head
	} else {
		args := make([]Term, len(r.Head.Args))
		for i, t := range r.Head.Args {
			val, err := EvalArith(substTerm(t, ev.tr.b))
			if err != nil {
				return err
			}
			args[i] = val
		}
		atom = Atom{Predicate: r.Head.Predicate, Args: args}
	}
	if !atom.Ground() {
		return fmt.Errorf("asp: non-ground head %s in EvalRule", atom)
	}
	for i := range ev.out {
		if AtomsEqual(ev.out[i], atom) {
			return nil
		}
	}
	ev.out = append(ev.out, atom)
	return nil
}

// AtomsEqual reports whether two atoms are structurally identical
// (predicate and arguments; source positions are ignored, matching
// Atom.Key equality).
func AtomsEqual(a, b Atom) bool {
	if a.Predicate != b.Predicate || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !termEq(a.Args[i], b.Args[i]) {
			return false
		}
	}
	return true
}
