package asp

import (
	"fmt"
)

// EvalRule evaluates a single rule against a fixed interpretation: it
// returns every head instance derivable in one step, with positive body
// literals matched against the interpretation, negative literals checked
// absent from it, and comparisons evaluated. The rule must be safe.
//
// This is the workhorse of the learner's fast path for non-recursive
// hypothesis rules: when a candidate rule's body only references
// background-derived predicates, its contribution to an answer set is
// exactly EvalRule(r, AS(background ∪ context)).
//
// Callers evaluating many rules against the same model, or the same rule
// against many models, should use ModelIndex and EvalPrepared to amortize
// the per-call model indexing and safety check.
func EvalRule(r Rule, model *AnswerSet) ([]Atom, error) {
	return NewModelIndex(model).EvalRule(r)
}

// ModelIndex is a predicate-indexed view of an answer set for repeated
// one-step rule evaluation. Building the index walks the model once;
// every evaluation after that probes by predicate.
type ModelIndex struct {
	model  *AnswerSet
	byPred map[string][]Atom
}

// NewModelIndex indexes an answer set by predicate. Iteration follows the
// model's sorted atom order, so evaluation output is deterministic.
func NewModelIndex(m *AnswerSet) *ModelIndex {
	ix := &ModelIndex{model: m, byPred: make(map[string][]Atom)}
	for _, a := range m.Atoms() {
		ix.byPred[a.Predicate] = append(ix.byPred[a.Predicate], a)
	}
	return ix
}

// Model returns the indexed answer set.
func (ix *ModelIndex) Model() *AnswerSet { return ix.model }

// EvalRule checks the rule (no choice rules, safety) and evaluates it
// against the indexed model.
func (ix *ModelIndex) EvalRule(r Rule) ([]Atom, error) {
	if r.IsChoice() {
		return nil, fmt.Errorf("asp: EvalRule does not support choice rules")
	}
	if err := CheckSafety(r); err != nil {
		return nil, err
	}
	return ix.EvalPrepared(r)
}

// EvalPrepared evaluates a rule already known to be safe and not a choice
// rule (e.g. checked once by the caller before an evaluation loop).
func (ix *ModelIndex) EvalPrepared(r Rule) ([]Atom, error) {
	var out []Atom
	seen := make(map[string]struct{})
	var step func(b Binding, remaining []Literal) error
	step = func(b Binding, remaining []Literal) error {
		if len(remaining) == 0 {
			if r.Head == nil {
				// Constraint body satisfied: represent with a marker
				// atom so callers can detect violation.
				if _, dup := seen["\x00violated"]; !dup {
					seen["\x00violated"] = struct{}{}
					out = append(out, Atom{Predicate: "_violated"})
				}
				return nil
			}
			h := r.Head.Substitute(b)
			ev, err := evalAtomArgs(h)
			if err != nil {
				return err
			}
			if !ev.Ground() {
				return fmt.Errorf("asp: non-ground head %s in EvalRule", ev)
			}
			if _, dup := seen[ev.Key()]; !dup {
				seen[ev.Key()] = struct{}{}
				out = append(out, ev)
			}
			return nil
		}
		// Pick the next processable literal (same discipline as the
		// grounder: positive atoms enumerate, ready comparisons filter,
		// binder equalities bind, ground negatives check).
		pick := -1
		kind := -1
		for i, l := range remaining {
			switch {
			case !l.IsCmp && !l.Negated:
				if pick == -1 {
					pick, kind = i, 0
				}
			case l.IsCmp:
				if unboundVarCount(l.Lhs, b) == 0 && unboundVarCount(l.Rhs, b) == 0 {
					pick, kind = i, 2
				} else if l.Op == CmpEq {
					if _, _, ok := binderSides(l, b); ok {
						pick, kind = i, 1
					}
				}
			default: // negated
				if pick == -1 {
					ground := true
					for _, t := range l.Atom.Args {
						if unboundVarCount(t, b) > 0 {
							ground = false
							break
						}
					}
					if ground {
						pick, kind = i, 3
					}
				}
			}
			if kind == 1 || kind == 2 {
				break
			}
		}
		if pick == -1 {
			return fmt.Errorf("asp: EvalRule stuck on rule %q", r.String())
		}
		l := remaining[pick]
		rest := make([]Literal, 0, len(remaining)-1)
		rest = append(rest, remaining[:pick]...)
		rest = append(rest, remaining[pick+1:]...)
		switch kind {
		case 0:
			for _, fact := range ix.byPred[l.Atom.Predicate] {
				nb := matchAtom(l.Atom, fact, b)
				if nb == nil {
					continue
				}
				if err := step(nb, rest); err != nil {
					return err
				}
			}
			return nil
		case 1:
			v, expr, ok := binderSides(l, b)
			if !ok {
				return fmt.Errorf("asp: EvalRule lost binder equality in rule %q", r.String())
			}
			val, err := EvalArith(expr.substitute(b))
			if err != nil {
				return err
			}
			nb := b.clone()
			nb[v.Name] = val
			return step(nb, rest)
		case 2:
			ok, err := EvalCmp(l.Substitute(b))
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			return step(b, rest)
		default:
			ev, err := evalAtomArgs(l.Atom.Substitute(b))
			if err != nil {
				return err
			}
			if ix.model.Contains(ev) {
				return nil
			}
			return step(b, rest)
		}
	}
	if err := step(Binding{}, r.Body); err != nil {
		return nil, err
	}
	return out, nil
}
