package asp

import (
	"fmt"
)

// EvalRule evaluates a single rule against a fixed interpretation: it
// returns every head instance derivable in one step, with positive body
// literals matched against the interpretation, negative literals checked
// absent from it, and comparisons evaluated. The rule must be safe.
//
// This is the workhorse of the learner's fast path for non-recursive
// hypothesis rules: when a candidate rule's body only references
// background-derived predicates, its contribution to an answer set is
// exactly EvalRule(r, AS(background ∪ context)).
func EvalRule(r Rule, model *AnswerSet) ([]Atom, error) {
	if r.IsChoice() {
		return nil, fmt.Errorf("asp: EvalRule does not support choice rules")
	}
	if err := CheckSafety(r); err != nil {
		return nil, err
	}
	// Index the interpretation by predicate for matching.
	byPred := make(map[string][]Atom)
	for _, a := range model.Atoms() {
		byPred[a.Predicate] = append(byPred[a.Predicate], a)
	}

	var out []Atom
	seen := make(map[string]struct{})
	var step func(b Binding, remaining []Literal) error
	step = func(b Binding, remaining []Literal) error {
		if len(remaining) == 0 {
			if r.Head == nil {
				// Constraint body satisfied: represent with a marker
				// atom so callers can detect violation.
				if _, dup := seen["\x00violated"]; !dup {
					seen["\x00violated"] = struct{}{}
					out = append(out, Atom{Predicate: "_violated"})
				}
				return nil
			}
			h := r.Head.Substitute(b)
			ev, err := evalAtomArgs(h)
			if err != nil {
				return err
			}
			if !ev.Ground() {
				return fmt.Errorf("asp: non-ground head %s in EvalRule", ev)
			}
			if _, dup := seen[ev.Key()]; !dup {
				seen[ev.Key()] = struct{}{}
				out = append(out, ev)
			}
			return nil
		}
		// Pick the next processable literal (same discipline as the
		// grounder: positive atoms enumerate, ready comparisons filter,
		// binder equalities bind, ground negatives check).
		pick := -1
		kind := -1
		for i, l := range remaining {
			ls := l.Substitute(b)
			switch {
			case !l.IsCmp && !l.Negated:
				if pick == -1 {
					pick, kind = i, 0
				}
			case l.IsCmp:
				lv, rv := make(map[string]struct{}), make(map[string]struct{})
				ls.Lhs.collectVars(lv)
				ls.Rhs.collectVars(rv)
				if len(lv)+len(rv) == 0 {
					pick, kind = i, 2
				} else if l.Op == CmpEq {
					if _, isVar := ls.Lhs.(Variable); isVar && len(rv) == 0 {
						pick, kind = i, 1
					} else if _, isVar := ls.Rhs.(Variable); isVar && len(lv) == 0 {
						pick, kind = i, 1
					}
				}
			default: // negated
				if ls.Atom.Ground() && pick == -1 {
					pick, kind = i, 3
				}
			}
			if kind == 1 || kind == 2 {
				break
			}
		}
		if pick == -1 {
			return fmt.Errorf("asp: EvalRule stuck on rule %q", r.String())
		}
		l := remaining[pick].Substitute(b)
		rest := make([]Literal, 0, len(remaining)-1)
		rest = append(rest, remaining[:pick]...)
		rest = append(rest, remaining[pick+1:]...)
		switch kind {
		case 0:
			for _, fact := range byPred[l.Atom.Predicate] {
				nb := matchAtom(l.Atom, fact, b)
				if nb == nil {
					continue
				}
				if err := step(nb, rest); err != nil {
					return err
				}
			}
			return nil
		case 1:
			v, expr := l.Lhs, l.Rhs
			if _, isVar := v.(Variable); !isVar {
				v, expr = l.Rhs, l.Lhs
			}
			val, err := EvalArith(expr)
			if err != nil {
				return err
			}
			nb := b.clone()
			nb[v.(Variable).Name] = val
			return step(nb, rest)
		case 2:
			ok, err := EvalCmp(l)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			return step(b, rest)
		default:
			ev, err := evalAtomArgs(l.Atom)
			if err != nil {
				return err
			}
			if model.Contains(ev) {
				return nil
			}
			return step(b, rest)
		}
	}
	if err := step(Binding{}, r.Body); err != nil {
		return nil, err
	}
	return out, nil
}
