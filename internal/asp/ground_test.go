package asp

import (
	"errors"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return p
}

func mustGround(t *testing.T, src string) *GroundProgram {
	t.Helper()
	g, err := Ground(mustParse(t, src), GroundingOptions{})
	if err != nil {
		t.Fatalf("Ground(%q): %v", src, err)
	}
	return g
}

func TestGroundFactsOnly(t *testing.T) {
	g := mustGround(t, "p(a). p(b). q(1).")
	if g.NumAtoms() != 3 {
		t.Fatalf("got %d atoms, want 3", g.NumAtoms())
	}
	if len(g.Rules) != 3 {
		t.Fatalf("got %d rules, want 3", len(g.Rules))
	}
	a, err := ParseAtom("p(a)")
	if err != nil {
		t.Fatal(err)
	}
	if g.AtomID(a) < 0 {
		t.Errorf("p(a) missing from ground program")
	}
}

func TestGroundSimpleJoin(t *testing.T) {
	g := mustGround(t, `
		edge(a, b). edge(b, c).
		path(X, Y) :- edge(X, Y).
		path(X, Z) :- edge(X, Y), path(Y, Z).
	`)
	for _, want := range []string{"path(a,b)", "path(b,c)", "path(a,c)"} {
		a, err := ParseAtom(want)
		if err != nil {
			t.Fatal(err)
		}
		if g.AtomID(a) < 0 {
			t.Errorf("expected atom %s in domain", want)
		}
	}
	bad, _ := ParseAtom("path(c,a)")
	if g.AtomID(bad) >= 0 {
		t.Errorf("path(c,a) should not be derivable")
	}
}

func TestGroundArithmetic(t *testing.T) {
	g := mustGround(t, `
		num(0).
		num(N + 1) :- num(N), N < 3.
	`)
	for _, want := range []string{"num(0)", "num(1)", "num(2)", "num(3)"} {
		a, _ := ParseAtom(want)
		if g.AtomID(a) < 0 {
			t.Errorf("missing %s", want)
		}
	}
	over, _ := ParseAtom("num(4)")
	if g.AtomID(over) >= 0 {
		t.Errorf("num(4) should not be derived (guard N < 3)")
	}
}

func TestGroundEqualityBinder(t *testing.T) {
	g := mustGround(t, `
		base(2). base(5).
		doubled(Y) :- base(X), Y = X * 2.
	`)
	for _, want := range []string{"doubled(4)", "doubled(10)"} {
		a, _ := ParseAtom(want)
		if g.AtomID(a) < 0 {
			t.Errorf("missing %s", want)
		}
	}
}

func TestGroundNegativeLiteralDropsWhenUnderivable(t *testing.T) {
	g := mustGround(t, `
		p(a).
		q(X) :- p(X), not r(X).
	`)
	// r(a) is never derivable so "not r(a)" is removed; the rule becomes
	// q(a) :- p(a), hence no negative bodies anywhere.
	for _, r := range g.Rules {
		if len(r.NegBody) != 0 {
			t.Errorf("negative literal not dropped: %+v", r)
		}
	}
}

func TestGroundNegativeLiteralKeptWhenDerivable(t *testing.T) {
	g := mustGround(t, `
		p(a). r(a).
		q(X) :- p(X), not r(X).
	`)
	found := false
	for _, r := range g.Rules {
		if len(r.NegBody) == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a kept negative literal in:\n%s", g)
	}
}

func TestGroundConstraints(t *testing.T) {
	g := mustGround(t, `
		p(a). p(b). q(a).
		:- p(X), q(X).
	`)
	constraints := 0
	for _, r := range g.Rules {
		if r.Head < 0 {
			constraints++
		}
	}
	if constraints != 1 {
		t.Errorf("got %d ground constraints, want 1 (only X=a satisfies q)", constraints)
	}
}

func TestGroundChoiceCompilation(t *testing.T) {
	g := mustGround(t, `
		node(a). node(b).
		{in(X)} :- node(X).
	`)
	for _, want := range []string{"in(a)", "in(b)"} {
		a, _ := ParseAtom(want)
		if g.AtomID(a) < 0 {
			t.Errorf("choice head %s missing from domain", want)
		}
	}
	// Compilation introduces complement atoms.
	comp := 0
	for _, a := range g.Atoms {
		if strings.HasPrefix(a.Predicate, "_choice_") {
			comp++
		}
	}
	if comp != 2 {
		t.Errorf("got %d complement atoms, want 2", comp)
	}
}

func TestSafetyErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "unbound head var", give: "p(X) :- q."},
		{name: "unbound negated var", give: "p :- not q(X)."},
		{name: "unbound comparison var", give: "p :- q, X > 2."},
		{name: "arith-only occurrence", give: "p(X) :- q(X + 1)."},
		{name: "circular equalities", give: "p(X) :- X = Y + 1, Y = X - 1."},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Ground(mustParse(t, tt.give), GroundingOptions{})
			var se *SafetyError
			if !errors.As(err, &se) {
				t.Errorf("Ground(%q) err = %v, want SafetyError", tt.give, err)
			}
		})
	}
}

func TestSafetyEqualityChains(t *testing.T) {
	// Y is bound through X via equality; safe.
	src := "p(Y) :- q(X), Y = X + 1."
	if _, err := Ground(mustParse(t, src), GroundingOptions{}); err != nil {
		t.Errorf("Ground(%q): %v", src, err)
	}
	// Chained: Z from Y from X.
	src = "p(Z) :- q(X), Y = X + 1, Z = Y * 2."
	if _, err := Ground(mustParse(t, src), GroundingOptions{}); err != nil {
		t.Errorf("Ground(%q): %v", src, err)
	}
}

func TestGroundMaxAtomsGuard(t *testing.T) {
	src := `
		num(0).
		num(N + 1) :- num(N), N < 100000.
	`
	_, err := Ground(mustParse(t, src), GroundingOptions{MaxAtoms: 100})
	if err == nil {
		t.Fatal("expected MaxAtoms error")
	}
	if !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestGroundNaiveEquivalence(t *testing.T) {
	srcs := []string{
		"edge(a,b). edge(b,c). edge(c,d). path(X,Y) :- edge(X,Y). path(X,Z) :- edge(X,Y), path(Y,Z).",
		"p(a). q(X) :- p(X), not r(X). r(b).",
		"num(0). num(N+1) :- num(N), N < 5. even(N) :- num(N), N \\ 2 = 0.",
	}
	for _, src := range srcs {
		gSemi, err := Ground(mustParse(t, src), GroundingOptions{})
		if err != nil {
			t.Fatalf("semi-naive: %v", err)
		}
		gNaive, err := Ground(mustParse(t, src), GroundingOptions{Naive: true})
		if err != nil {
			t.Fatalf("naive: %v", err)
		}
		if gSemi.NumAtoms() != gNaive.NumAtoms() {
			t.Errorf("atom counts differ: semi=%d naive=%d for %q", gSemi.NumAtoms(), gNaive.NumAtoms(), src)
		}
		if len(gSemi.Rules) != len(gNaive.Rules) {
			t.Errorf("rule counts differ: semi=%d naive=%d for %q", len(gSemi.Rules), len(gNaive.Rules), src)
		}
	}
}

func TestGroundCompoundTerms(t *testing.T) {
	g := mustGround(t, `
		holds(f(a, 1)).
		arg1(X) :- holds(f(X, Y)).
	`)
	a, _ := ParseAtom("arg1(a)")
	if g.AtomID(a) < 0 {
		t.Errorf("compound term matching failed:\n%s", g)
	}
}

func TestGroundRuleDeduplication(t *testing.T) {
	// The same ground instance can be produced through two derivations;
	// it must appear once.
	g := mustGround(t, `
		p(a). q(a). r(a).
		s(X) :- p(X), q(X).
		s(X) :- p(X), q(X).
	`)
	count := 0
	sa, _ := ParseAtom("s(a)")
	said := g.AtomID(sa)
	for _, r := range g.Rules {
		if r.Head == said {
			count++
		}
	}
	if count != 1 {
		t.Errorf("duplicate ground rules: got %d, want 1", count)
	}
}

func TestGroundStringOutput(t *testing.T) {
	g := mustGround(t, "p(a). q :- p(a), not r. r.")
	s := g.String()
	for _, want := range []string{"p(a).", "q :- p(a), not r.", "r."} {
		if !strings.Contains(s, want) {
			t.Errorf("ground program output missing %q:\n%s", want, s)
		}
	}
}

func TestGroundComparisonFilters(t *testing.T) {
	g := mustGround(t, `
		n(1). n(2). n(3). n(4).
		big(X) :- n(X), X >= 3.
		pair(X, Y) :- n(X), n(Y), X < Y.
	`)
	tests := []struct {
		atom string
		want bool
	}{
		{atom: "big(3)", want: true},
		{atom: "big(4)", want: true},
		{atom: "big(2)", want: false},
		{atom: "pair(1,2)", want: true},
		{atom: "pair(2,1)", want: false},
		{atom: "pair(1,4)", want: true},
		{atom: "pair(3,3)", want: false},
	}
	for _, tt := range tests {
		a, _ := ParseAtom(tt.atom)
		got := g.AtomID(a) >= 0
		if got != tt.want {
			t.Errorf("%s in domain = %v, want %v", tt.atom, got, tt.want)
		}
	}
}
