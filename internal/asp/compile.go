package asp

// Clause-form compilation: a GroundProgram is translated once into the
// Clark-completion nogoods the CDNL engine searches over. Every atom
// and every distinct rule body gets a solver variable; a literal is
// 2*v for "v true" and 2*v+1 for "v false". For a body β = l1,...,lm
// the compiler emits
//
//	(β ∨ ¬l1 ∨ ... ∨ ¬lm)   body is true once all its literals hold
//	(¬β ∨ li)               and forces each literal while true
//
// for every atom a with supporting bodies β1..βk
//
//	(¬a ∨ β1 ∨ ... ∨ βk)    a needs a true body (unit ¬a when k = 0)
//	(a ∨ ¬βi)               and any true body derives a
//
// and for every constraint body the unit (¬β). Completion alone is
// stable-model exact only for tight programs; the compiler therefore
// marks the atoms on positive dependency cycles so the solver knows
// when to run its unfounded-set check.
//
// Variables are append-only and never renumbered, so an incremental
// extension (new atoms, new bodies, new clauses) can be journaled and
// rolled back without disturbing the base clauses. The clause arena is
// [size, flags, lits...] records; a clause ref is the offset of its
// size word. The arena is read-only during solving (learned clauses
// live in solver-private storage), so one compiled program may serve
// concurrent solves of the same ground program.

const clauseDisabled = 1

// pLit / nLit build the positive ("v true") and negative literal of a
// variable; litVar recovers the variable.
func pLit(v int32) int32   { return v << 1 }
func nLit(v int32) int32   { return v<<1 | 1 }
func litVar(l int32) int32 { return l >> 1 }

// CompiledProgram is the clause form of a ground program: completion
// clauses over atom and body variables plus the positive-dependency
// cycle information the unfounded-set check needs. Build one with
// compileGround (or transparently via GroundProgram.clauseForm) and
// reuse it across solves.
type CompiledProgram struct {
	nAtoms int32 // atom ids covered; atomVar is parallel
	nVars  int32

	atomVar []int32 // atom id -> solver variable
	varAtom []int32 // variable -> atom id, or -1 for body variables

	arena []int32 // clause store: [size, flags, lits...]*

	// Body structure. bodyLit[bodyOff[b]:bodyOff[b+1]] lists the atom
	// literals body b requires (pLit for positive, nLit for negated),
	// over atom variables.
	bodyOff   []int32
	bodyLit   []int32
	bodyVarID []int32          // body id -> solver variable
	bodyKey   map[string]int32 // canonical body literals -> body id

	heads    [][]int32 // per body: head atoms it supports
	supports [][]int32 // per atom: bodies supporting it
	supRef   []int32   // per atom: arena ref of its support clause

	// Positive-dependency cycle info. cyclic[a] marks atoms on a
	// positive cycle; tight programs (nCyclic == 0) skip the
	// unfounded-set machinery entirely.
	cyclic  []bool
	nCyclic int32

	// posBodyPreds holds the predicates occurring positively in any
	// rule body: an extension can only create new positive cycles when
	// one of its head predicates is in this set (something must depend
	// on the new heads), which gates the SCC recomputation.
	posBodyPreds map[string]struct{}

	keyBuf []byte  // scratch for body interning
	litBuf []int32 // scratch for body literal canonicalisation
}

// NumClauseVars returns the solver variable count (atoms plus bodies).
func (cp *CompiledProgram) NumClauseVars() int { return int(cp.nVars) }

// NumClauses counts the active clauses in the arena.
func (cp *CompiledProgram) NumClauses() int {
	n := 0
	for ref := int32(0); ref < int32(len(cp.arena)); ref += cp.arena[ref] + 2 {
		if cp.arena[ref+1]&clauseDisabled == 0 {
			n++
		}
	}
	return n
}

// Tight reports whether the program has no positive dependency cycles.
func (cp *CompiledProgram) Tight() bool { return cp.nCyclic == 0 }

// compileGround builds the clause form of a ground program.
func compileGround(g *GroundProgram) *CompiledProgram {
	n := int32(g.NumAtoms())
	// Pre-size the clause arena and support lists from one pass over the
	// rules: a body of m literals costs at most 3+5m arena words (body
	// definition plus m literal clauses), a head/constraint rule 4 more,
	// and every atom's support clause 3 plus one word per supporting
	// body. Upper bounds — body dedup only shrinks them — so the arena
	// never reallocates and each supports[a] is carved from one block.
	lits, arena := 0, 0
	headCnt := make([]int32, n)
	totalHeads := 0
	for ri := range g.Rules {
		r := &g.Rules[ri]
		m := len(r.PosBody) + len(r.NegBody)
		lits += m
		arena += 3 + 5*m + 4
		if r.Head >= 0 {
			headCnt[r.Head]++
			totalHeads++
		}
	}
	arena += 3*int(n) + totalHeads
	cp := &CompiledProgram{
		nAtoms:       n,
		nVars:        n,
		arena:        make([]int32, 0, arena),
		bodyKey:      make(map[string]int32, len(g.Rules)),
		bodyLit:      make([]int32, 0, lits),
		bodyOff:      make([]int32, 1, len(g.Rules)+1),
		bodyVarID:    make([]int32, 0, len(g.Rules)),
		heads:        make([][]int32, 0, len(g.Rules)),
		posBodyPreds: make(map[string]struct{}),
		atomVar:      make([]int32, n),
		varAtom:      make([]int32, n, n+int32(len(g.Rules))),
		supports:     make([][]int32, n),
		supRef:       make([]int32, n),
	}
	supBlock := make([]int32, totalHeads)
	off := 0
	for a := int32(0); a < n; a++ {
		cp.atomVar[a] = a
		cp.varAtom[a] = a
		c := int(headCnt[a])
		cp.supports[a] = supBlock[off : off : off+c]
		off += c
	}
	cp.addRules(g.Rules, g, nil)
	cp.finishAtoms(0, n)
	cp.computeCyclic()
	return cp
}

// clauseForm returns the cached clause form of the program, compiling
// it on first use. Programs produced by IncrementalGrounder.Extend
// carry a hook that extends the grounder's base clause form instead of
// compiling from scratch.
func (g *GroundProgram) clauseForm() *CompiledProgram {
	if g.cp == nil {
		if g.cpFn != nil {
			g.cp = g.cpFn()
		} else {
			g.cp = compileGround(g)
		}
	}
	return g.cp
}

// beginClause/endClause bracket arena clause emission.
func (cp *CompiledProgram) beginClause() int32 {
	ref := int32(len(cp.arena))
	cp.arena = append(cp.arena, 0, 0) // size, flags
	return ref
}

func (cp *CompiledProgram) endClause(ref int32) {
	cp.arena[ref] = int32(len(cp.arena)) - ref - 2
}

func (cp *CompiledProgram) emit2(a, b int32) {
	ref := cp.beginClause()
	cp.arena = append(cp.arena, a, b)
	cp.endClause(ref)
}

func (cp *CompiledProgram) emit1(a int32) {
	ref := cp.beginClause()
	cp.arena = append(cp.arena, a)
	cp.endClause(ref)
}

// internBody canonicalises a rule body into a body id, emitting the
// body-definition clauses on first sight. j is the active extension
// journal, nil during base compilation.
func (cp *CompiledProgram) internBody(pos, neg []int32, j *cpJournal) int32 {
	lits := cp.litBuf[:0]
	for _, a := range pos {
		lits = append(lits, pLit(cp.atomVar[a]))
	}
	for _, a := range neg {
		lits = append(lits, nLit(cp.atomVar[a]))
	}
	// Insertion sort: bodies are short and nearly sorted.
	for i := 1; i < len(lits); i++ {
		for k := i; k > 0 && lits[k] < lits[k-1]; k-- {
			lits[k], lits[k-1] = lits[k-1], lits[k]
		}
	}
	// Dedup in place.
	w := 0
	for i, l := range lits {
		if i > 0 && l == lits[w-1] {
			continue
		}
		lits[w] = l
		w++
	}
	lits = lits[:w]
	cp.litBuf = lits

	key := cp.keyBuf[:0]
	for _, l := range lits {
		key = append(key, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	cp.keyBuf = key
	if b, ok := cp.bodyKey[string(key)]; ok {
		return b
	}
	if j != nil {
		// Extensions intern new bodies in the journal's side table so
		// rollback never touches the shared map.
		if b := j.lookupExt(key); b >= 0 {
			return b
		}
		j.addExtKey(key)
	}
	b := cp.nBodies()
	if j == nil {
		cp.bodyKey[string(key)] = b
	}
	cp.bodyLit = append(cp.bodyLit, lits...)
	cp.bodyOff = append(cp.bodyOff, int32(len(cp.bodyLit)))
	cp.heads = append(cp.heads, nil)
	vb := cp.nVars
	cp.nVars++
	cp.bodyVarID = append(cp.bodyVarID, vb)
	cp.varAtom = append(cp.varAtom, -1)

	// Body-true clause: (β ∨ ¬l1 ∨ ... ∨ ¬lm); a fact body is the unit (β).
	ref := cp.beginClause()
	cp.arena = append(cp.arena, pLit(vb))
	for _, l := range lits {
		cp.arena = append(cp.arena, l^1)
	}
	cp.endClause(ref)
	// Literal clauses: (¬β ∨ li).
	for _, l := range lits {
		cp.emit2(nLit(vb), l)
	}
	return b
}

func (cp *CompiledProgram) nBodies() int32 { return int32(len(cp.bodyVarID)) }

// addRules compiles rules into bodies, head-derivation clauses, support
// lists, and constraint units. g supplies predicate names for the cycle
// gate; its atom table must cover every id the rules mention.
func (cp *CompiledProgram) addRules(rules []GroundRule, g *GroundProgram, j *cpJournal) {
	for ri := range rules {
		r := &rules[ri]
		b := cp.internBody(r.PosBody, r.NegBody, j)
		for _, a := range r.PosBody {
			p := g.Atoms[a].Predicate
			if _, ok := cp.posBodyPreds[p]; !ok {
				cp.posBodyPreds[p] = struct{}{}
				if j != nil {
					j.addedPreds = append(j.addedPreds, p)
				}
			}
		}
		if r.Head < 0 {
			// Constraint: the body must never hold.
			cp.emit1(nLit(cp.bodyVarID[b]))
			continue
		}
		if containsInt32(cp.supports[r.Head], b) {
			continue // duplicate (head, body) pair after body canonicalisation
		}
		if j != nil {
			j.noteSupportGrowth(cp, r.Head, b)
		}
		cp.supports[r.Head] = append(cp.supports[r.Head], b)
		cp.heads[b] = append(cp.heads[b], r.Head)
		// Head-derivation clause: (a ∨ ¬β).
		cp.emit2(pLit(cp.atomVar[r.Head]), nLit(cp.bodyVarID[b]))
	}
}

func containsInt32(s []int32, x int32) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// finishAtoms emits the support clause for every atom in [from, to):
// (¬a ∨ β1 ∨ ... ∨ βk), degenerating to the unit (¬a) for atoms with no
// supporting body.
func (cp *CompiledProgram) finishAtoms(from, to int32) {
	for a := from; a < to; a++ {
		cp.supRef[a] = cp.emitSupport(a)
	}
}

func (cp *CompiledProgram) emitSupport(a int32) int32 {
	ref := cp.beginClause()
	cp.arena = append(cp.arena, nLit(cp.atomVar[a]))
	for _, b := range cp.supports[a] {
		cp.arena = append(cp.arena, pLit(cp.bodyVarID[b]))
	}
	cp.endClause(ref)
	return ref
}

// computeCyclic finds the atoms on positive dependency cycles (SCC size
// greater than one, or a self-loop) with an iterative Tarjan pass over
// the head -> positive-body-atom graph induced by the body structure.
func (cp *CompiledProgram) computeCyclic() {
	n := int(cp.nAtoms)
	cyclic := make([]bool, n)
	index := make([]int32, n) // 0 = unvisited, else order+1
	low := make([]int32, n)
	onStack := make([]bool, n)
	sccStack := make([]int32, 0, 16)
	next := int32(1)

	// Explicit DFS frames: node plus a cursor over its outgoing edges,
	// flattened as (support index, literal index within that body).
	type frame struct {
		node   int32
		si, li int32
	}
	var stack []frame

	// edgeTarget advances a frame's cursor to its next positive-body
	// atom, returning -1 when the node's edges are exhausted.
	edgeTarget := func(f *frame) int32 {
		sup := cp.supports[f.node]
		for int(f.si) < len(sup) {
			b := sup[f.si]
			lits := cp.bodyLit[cp.bodyOff[b]:cp.bodyOff[b+1]]
			for int(f.li) < len(lits) {
				l := lits[f.li]
				f.li++
				if l&1 == 0 {
					if a := cp.varAtom[litVar(l)]; a >= 0 {
						return a
					}
				}
			}
			f.si++
			f.li = 0
		}
		return -1
	}

	for root := int32(0); root < int32(n); root++ {
		if index[root] != 0 {
			continue
		}
		stack = append(stack[:0], frame{node: root})
		index[root] = next
		low[root] = next
		next++
		sccStack = append(sccStack, root)
		onStack[root] = true
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			t := edgeTarget(f)
			if t >= 0 {
				if t == f.node {
					cyclic[t] = true // self-loop
					continue
				}
				if index[t] == 0 {
					stack = append(stack, frame{node: t})
					index[t] = next
					low[t] = next
					next++
					sccStack = append(sccStack, t)
					onStack[t] = true
				} else if onStack[t] && index[t] < low[f.node] {
					low[f.node] = index[t]
				}
				continue
			}
			// Node done: pop, propagate low, close the SCC at its root.
			v := f.node
			stack = stack[:len(stack)-1]
			if len(stack) > 0 && low[v] < low[stack[len(stack)-1].node] {
				low[stack[len(stack)-1].node] = low[v]
			}
			if low[v] == index[v] {
				top := len(sccStack)
				i := top
				for {
					i--
					onStack[sccStack[i]] = false
					if sccStack[i] == v {
						break
					}
				}
				if top-i > 1 {
					for k := i; k < top; k++ {
						cyclic[sccStack[k]] = true
					}
				}
				sccStack = sccStack[:i]
			}
		}
	}

	cp.cyclic = cyclic
	cp.nCyclic = 0
	for _, c := range cyclic {
		if c {
			cp.nCyclic++
		}
	}
}
