package asp

import (
	"testing"
)

func atomStrings(atoms []Atom) []string {
	out := make([]string, len(atoms))
	for i, a := range atoms {
		out[i] = a.String()
	}
	return out
}

func TestBraveAndCautiousConsequences(t *testing.T) {
	prog := mustParse(t, "a :- not b. b :- not a. c :- a. c :- b.")
	brave, ok, err := BraveConsequences(prog, SolveOptions{})
	if err != nil || !ok {
		t.Fatalf("brave: %v %v", ok, err)
	}
	// a, b and c each hold in some answer set.
	if got := atomStrings(brave); len(got) != 3 {
		t.Errorf("brave = %v", got)
	}
	cautious, ok, err := CautiousConsequences(prog, SolveOptions{})
	if err != nil || !ok {
		t.Fatalf("cautious: %v %v", ok, err)
	}
	// Only c holds in every answer set.
	if got := atomStrings(cautious); len(got) != 1 || got[0] != "c" {
		t.Errorf("cautious = %v", got)
	}
}

func TestConsequencesInconsistentProgram(t *testing.T) {
	prog := mustParse(t, "p :- not p.")
	if _, ok, err := BraveConsequences(prog, SolveOptions{}); err != nil || ok {
		t.Errorf("brave on inconsistent: ok=%v err=%v", ok, err)
	}
	if _, ok, err := CautiousConsequences(prog, SolveOptions{}); err != nil || ok {
		t.Errorf("cautious on inconsistent: ok=%v err=%v", ok, err)
	}
}

func TestConsequencesDeterministicProgram(t *testing.T) {
	prog := mustParse(t, "p(1..3). q(X) :- p(X), X < 2.")
	brave, _, err := BraveConsequences(prog, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cautious, _, err := CautiousConsequences(prog, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// One answer set: brave == cautious.
	if len(brave) != len(cautious) || len(brave) != 4 {
		t.Errorf("brave %v vs cautious %v", atomStrings(brave), atomStrings(cautious))
	}
}
