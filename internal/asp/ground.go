package asp

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"agenp/internal/obs"
)

// VarOccurrence is one source occurrence of a variable in a rule.
type VarOccurrence struct {
	Name string
	Pos  Pos
}

// SafetyError reports an unsafe rule: a variable not bound by any
// positive body literal or computable equality.
type SafetyError struct {
	Rule Rule
	Vars []string
	// Occurrences lists every occurrence of each unsafe variable in
	// source order. Positions are valid when the rule was parsed from
	// text.
	Occurrences []VarOccurrence
}

func (e *SafetyError) Error() string {
	where := ""
	if e.Rule.Pos.Valid() {
		where = fmt.Sprintf(" at %s", e.Rule.Pos)
	}
	return fmt.Sprintf("unsafe rule%s %q: unbound variables %s",
		where, e.Rule.String(), describeOccurrences(e.Vars, e.Occurrences))
}

// describeOccurrences renders "X (1:3, 1:9), Y (2:4)"; variables without
// positioned occurrences render as bare names.
func describeOccurrences(vars []string, occs []VarOccurrence) string {
	var sb strings.Builder
	for i, v := range vars {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v)
		var at []string
		for _, o := range occs {
			if o.Name == v && o.Pos.Valid() {
				at = append(at, o.Pos.String())
			}
		}
		if len(at) > 0 {
			sb.WriteString(" (")
			sb.WriteString(strings.Join(at, ", "))
			sb.WriteByte(')')
		}
	}
	return sb.String()
}

// walkTermVars visits every variable occurrence of a term, including
// occurrences inside compound, arithmetic and range subterms.
func walkTermVars(t Term, f func(v Variable)) {
	switch tt := t.(type) {
	case Variable:
		f(tt)
	case Compound:
		for _, a := range tt.Args {
			walkTermVars(a, f)
		}
	case Arith:
		walkTermVars(tt.L, f)
		walkTermVars(tt.R, f)
	case Range:
		walkTermVars(tt.Lo, f)
		walkTermVars(tt.Hi, f)
	}
}

// ruleVarOccurrences collects every occurrence of the named variables in
// the rule, in source order: head, choice atoms, then body literals.
func ruleVarOccurrences(r Rule, names map[string]struct{}) []VarOccurrence {
	var out []VarOccurrence
	visit := func(v Variable) {
		if _, ok := names[v.Name]; ok {
			out = append(out, VarOccurrence{Name: v.Name, Pos: v.Pos})
		}
	}
	if r.Head != nil {
		for _, t := range r.Head.Args {
			walkTermVars(t, visit)
		}
	}
	for _, a := range r.Choice {
		for _, t := range a.Args {
			walkTermVars(t, visit)
		}
	}
	for _, l := range r.Body {
		if l.IsCmp {
			walkTermVars(l.Lhs, visit)
			walkTermVars(l.Rhs, visit)
			continue
		}
		for _, t := range l.Atom.Args {
			walkTermVars(t, visit)
		}
	}
	return out
}

// GroundRule is a fully instantiated rule over interned atom ids.
// Head == -1 denotes a constraint.
type GroundRule struct {
	Head    int32
	PosBody []int32
	NegBody []int32
}

// GroundProgram is the result of grounding: an atom table plus ground
// rules referencing atoms by id.
type GroundProgram struct {
	Atoms []Atom // id -> atom
	Rules []GroundRule

	index map[string]int32 // atom key -> id

	// cp caches the clause form (see compile.go); cpFn, when set by the
	// incremental grounder, builds it by extending the base clause form
	// instead of compiling from scratch.
	cp   *CompiledProgram
	cpFn func() *CompiledProgram
}

// AtomID returns the id of a ground atom, or -1 if the atom does not
// occur in the ground program. The key index is built lazily on first
// lookup (like clauseForm): most ground programs go straight to the
// solver and never pay for it.
func (g *GroundProgram) AtomID(a Atom) int32 {
	if g.index == nil {
		idx := make(map[string]int32, len(g.Atoms))
		var buf []byte
		for id, at := range g.Atoms {
			buf = appendAtomKey(buf[:0], at)
			idx[string(buf)] = int32(id)
		}
		g.index = idx
	}
	if id, ok := g.index[a.Key()]; ok {
		return id
	}
	return -1
}

// NumAtoms returns the number of distinct ground atoms.
func (g *GroundProgram) NumAtoms() int { return len(g.Atoms) }

// String renders the ground program in ASP syntax.
func (g *GroundProgram) String() string {
	var sb strings.Builder
	for _, r := range g.Rules {
		if r.Head >= 0 {
			sb.WriteString(g.Atoms[r.Head].String())
		}
		if len(r.PosBody)+len(r.NegBody) > 0 {
			sb.WriteString(" :- ")
			first := true
			for _, id := range r.PosBody {
				if !first {
					sb.WriteString(", ")
				}
				sb.WriteString(g.Atoms[id].String())
				first = false
			}
			for _, id := range r.NegBody {
				if !first {
					sb.WriteString(", ")
				}
				sb.WriteString("not ")
				sb.WriteString(g.Atoms[id].String())
				first = false
			}
		}
		sb.WriteString(".\n")
	}
	return sb.String()
}

// GroundingOptions configures the grounder.
type GroundingOptions struct {
	// Naive disables the semi-naive delta optimisation (every round
	// re-instantiates every rule against the full relations). Exposed for
	// the ablation benchmark; results are identical.
	Naive bool

	// StringKeyed disables interned-id candidate indexing in the join:
	// every positive body literal scans its predicate's full fact list
	// instead of probing the per-argument index. Exposed for the ablation
	// benchmark; results are identical.
	StringKeyed bool

	// NaivePlan disables compiled grounding plans: rules are instantiated
	// by the legacy greedy backtracking join (next literal re-picked by a
	// textual-order scan on every step, variables bound through a
	// string-keyed trail map). Exposed as the differential oracle and
	// ablation benchmark; results are identical up to atom numbering and
	// rule order.
	NaivePlan bool

	// MaxAtoms aborts grounding when the domain exceeds this many atoms
	// (0 = unlimited). Guards against runaway programs.
	MaxAtoms int
}

// Ground instantiates a program into a GroundProgram under the standard
// bottom-up over-approximation: the atom domain is the least fixpoint of
// the rules with negative literals ignored; rule instances whose negative
// atoms are not in the domain have those literals removed (they are
// vacuously true).
//
// Choice rules are compiled into pairs of normal rules over fresh
// complement atoms before grounding, so the resulting ground program
// contains only normal rules and constraints.
func Ground(p *Program, opts GroundingOptions) (*GroundProgram, error) {
	t0 := time.Now()
	sp := obs.StartSpan("asp.ground")
	normal, err := prepare(p, "")
	if err != nil {
		sp.End()
		return nil, err
	}
	g := newGrounder(opts)
	if err := g.groundRules(normal.Rules); err != nil {
		g.release()
		sp.End()
		return nil, err
	}
	instances := len(g.pending)
	atoms := g.in.Len()
	out := g.finalize()
	statGroundCalls.Inc()
	statGroundDur.ObserveSince(t0)
	statAtomsInterned.Add(int64(atoms))
	statRulesInstances.Add(int64(instances))
	statGroundRulesKept.Add(int64(len(out.Rules)))
	g.flushPlanStats()
	g.release()
	if obs.TracingEnabled() {
		sp.SetAttr("atoms", strconv.Itoa(atoms))
		sp.SetAttr("rules", strconv.Itoa(len(out.Rules)))
	}
	sp.End()
	return out, nil
}

// prepare expands ranges, compiles choice rules (fresh complement atoms
// namespaced by ns) and checks safety.
func prepare(p *Program, ns string) (*Program, error) {
	expanded, err := expandRanges(p)
	if err != nil {
		return nil, err
	}
	normal, err := compileChoices(expanded, ns)
	if err != nil {
		return nil, err
	}
	for _, r := range normal.Rules {
		if r.IsFact() {
			continue // trivially safe; skip the map-building check
		}
		if err := CheckSafety(r); err != nil {
			return nil, err
		}
	}
	return normal, nil
}

// groundRules compiles the rules into planned form, runs the definite
// fixpoint, and grounds constraints against the final relations. Ground
// facts are emitted inline — no compiled form, no intermediate slice —
// since tree/scenario programs are dominated by them.
func (g *grounder) groundRules(rules []Rule) error {
	g.delta = make(map[predKey][]int32)
	var defs, cons []*plannedRule
	for _, r := range rules {
		if r.IsFact() {
			if err := g.emitFact(*r.Head); err != nil {
				return err
			}
			continue
		}
		pr := newPlannedRule(r)
		if pr.isCon {
			cons = append(cons, pr)
		} else {
			defs = append(defs, pr)
		}
	}
	if err := g.fixpoint(defs); err != nil {
		return err
	}
	for _, c := range cons {
		if err := g.instantiate(c, -1, nil); err != nil {
			return err
		}
	}
	return nil
}

// planRules splits the rules into ground facts (emitted without any
// compilation — tree/scenario programs are dominated by them), compiled
// definite rules, and compiled constraints.
func planRules(rules []Rule) (facts []Atom, defs, cons []*plannedRule) {
	for _, r := range rules {
		if r.IsFact() {
			facts = append(facts, *r.Head)
			continue
		}
		pr := newPlannedRule(r)
		if pr.isCon {
			cons = append(cons, pr)
		} else {
			defs = append(defs, pr)
		}
	}
	return facts, defs, cons
}

func (g *grounder) groundPlanned(facts []Atom, defs, cons []*plannedRule) error {
	g.delta = make(map[predKey][]int32)
	for _, a := range facts {
		if err := g.emitFact(a); err != nil {
			return err
		}
	}
	if err := g.fixpoint(defs); err != nil {
		return err
	}
	for _, c := range cons {
		if err := g.instantiate(c, -1, nil); err != nil {
			return err
		}
	}
	return nil
}

// emitFact interns a ground fact head and records its instance.
func (g *grounder) emitFact(a Atom) error {
	id, err := g.internGroundAtom(a)
	if err != nil {
		return err
	}
	g.addAtomID(id)
	g.pending = append(g.pending, groundInstance{head: id})
	return nil
}

// instantiate grounds one rule for one delta slot (-1 = against the full
// relations), dispatching between the compiled-plan VM and the greedy
// oracle. The empty-delta skip applies to both paths, keeping their
// observable behaviour (including error reachability) aligned.
func (g *grounder) instantiate(pr *plannedRule, slot int, delta map[predKey][]int32) error {
	var deltaCands []int32
	if slot >= 0 {
		deltaCands = delta[pr.posPred[slot]]
		if len(deltaCands) == 0 {
			return nil
		}
	}
	if g.opts.NaivePlan {
		dp := -1
		if slot >= 0 {
			dp = pr.posIdx[slot]
		}
		return g.instantiateAgainst(pr.rule, dp, delta)
	}
	plan, err := pr.planFor(slot, g)
	if err != nil {
		return err
	}
	return g.runPlan(pr, plan, deltaCands)
}

// compileChoices rewrites every choice rule {a1;...;ak} :- body into, for
// each i, the pair
//
//	ai  :- body, not _ci.
//	_ci :- body, not ai.
//
// where _ci is a fresh atom carrying the variables of ai and body. This is
// the standard encoding of choice under stable-model semantics. The ns
// parameter namespaces the fresh predicates so separately compiled
// programs (incremental grounding extensions) cannot collide.
func compileChoices(p *Program, ns string) (*Program, error) {
	hasChoice := false
	for i := range p.Rules {
		if p.Rules[i].IsChoice() {
			hasChoice = true
			break
		}
	}
	if !hasChoice {
		return p, nil
	}
	out := &Program{Rules: make([]Rule, 0, len(p.Rules))}
	fresh := 0
	prefix := "_choice_"
	if ns != "" {
		prefix = "_choice_" + ns + "_"
	}
	for _, r := range p.Rules {
		if !r.IsChoice() {
			out.Rules = append(out.Rules, r)
			continue
		}
		ruleVars := make([]string, 0, 4)
		seen := make(map[string]struct{})
		for v := range r.Variables() {
			if _, ok := seen[v]; !ok {
				seen[v] = struct{}{}
				ruleVars = append(ruleVars, v)
			}
		}
		sort.Strings(ruleVars)
		varTerms := make([]Term, len(ruleVars))
		for i, v := range ruleVars {
			varTerms[i] = Variable{Name: v}
		}
		for i, a := range r.Choice {
			comp := Atom{
				Predicate: fmt.Sprintf("%s%d_%d", prefix, fresh, i),
				Args:      varTerms,
			}
			posRule := Rule{Head: &Atom{Predicate: a.Predicate, Args: a.Args, Pos: a.Pos}, Pos: r.Pos}
			posRule.Body = append(append([]Literal{}, r.Body...), Neg(comp))
			compRule := Rule{Head: &comp, Pos: r.Pos}
			compRule.Body = append(append([]Literal{}, r.Body...), Neg(a))
			out.Rules = append(out.Rules, posRule, compRule)
		}
		fresh++
	}
	return out, nil
}

// CheckSafety verifies that every variable of the rule is bound: it
// occurs in a positive body atom literal outside arithmetic, or in an
// equality V = expr (or expr = V) whose other side only uses bound
// variables. Binding propagates to a fixpoint.
func CheckSafety(r Rule) error {
	bound := make(map[string]struct{})
	varsOfTermOutsideArith := func(t Term, into map[string]struct{}) {
		var walk func(t Term)
		walk = func(t Term) {
			switch tt := t.(type) {
			case Variable:
				into[tt.Name] = struct{}{}
			case Compound:
				for _, a := range tt.Args {
					walk(a)
				}
			case Arith:
				// Variables inside arithmetic are *used*, not bound.
			}
		}
		walk(t)
	}
	for _, l := range r.Body {
		if !l.IsCmp && !l.Negated {
			for _, t := range l.Atom.Args {
				varsOfTermOutsideArith(t, bound)
			}
		}
	}
	// Propagate through equalities.
	changed := true
	for changed {
		changed = false
		for _, l := range r.Body {
			if !l.IsCmp || l.Op != CmpEq {
				continue
			}
			tryBind := func(v Term, other Term) {
				vv, ok := v.(Variable)
				if !ok {
					return
				}
				if _, already := bound[vv.Name]; already {
					return
				}
				otherVars := make(map[string]struct{})
				other.collectVars(otherVars)
				for ov := range otherVars {
					if _, ok := bound[ov]; !ok {
						return
					}
				}
				bound[vv.Name] = struct{}{}
				changed = true
			}
			tryBind(l.Lhs, l.Rhs)
			tryBind(l.Rhs, l.Lhs)
		}
	}
	var unbound []string
	for v := range r.Variables() {
		if _, ok := bound[v]; !ok {
			unbound = append(unbound, v)
		}
	}
	if len(unbound) > 0 {
		sort.Strings(unbound)
		names := make(map[string]struct{}, len(unbound))
		for _, v := range unbound {
			names[v] = struct{}{}
		}
		return &SafetyError{Rule: r, Vars: unbound, Occurrences: ruleVarOccurrences(r, names)}
	}
	return nil
}

// Interner assigns dense integer ids to ground atoms. String keys are
// computed once at interning time; all downstream joins and rule bodies
// work on the ids.
type Interner struct {
	atoms []Atom
	index map[string]int32
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{index: make(map[string]int32)}
}

// Intern returns the id of a ground atom, assigning the next dense id on
// first sight.
func (in *Interner) Intern(a Atom) int32 {
	key := a.Key()
	if id, ok := in.index[key]; ok {
		return id
	}
	id := int32(len(in.atoms))
	in.atoms = append(in.atoms, a)
	in.index[key] = id
	return id
}

// Lookup returns the id of an atom, or -1 when it was never interned.
func (in *Interner) Lookup(a Atom) int32 {
	if id, ok := in.index[a.Key()]; ok {
		return id
	}
	return -1
}

// Atom returns the atom for an id.
func (in *Interner) Atom(id int32) Atom { return in.atoms[id] }

// Len returns the number of interned atoms.
func (in *Interner) Len() int { return len(in.atoms) }

// truncate removes every atom with id >= n (rollback support for
// incremental grounding).
func (in *Interner) truncate(n int) {
	for _, a := range in.atoms[n:] {
		delete(in.index, a.Key())
	}
	in.atoms = in.atoms[:n]
}

// reset empties the interner keeping its capacity (pool reuse). Atom
// argument slices handed out earlier are never mutated, so programs
// built from a previous use stay valid.
func (in *Interner) reset() {
	clear(in.index)
	in.atoms = in.atoms[:0]
}

// predKey identifies a relation: predicate name plus arity.
type predKey struct {
	name  string
	arity int
}

func atomPredKey(a Atom) predKey { return predKey{name: a.Predicate, arity: len(a.Args)} }

// argKey is a comparable per-argument index key for one ground term:
// integers and plain constants (the overwhelmingly common argument
// shapes) key directly on their value without allocating, everything
// else falls back to the canonical TermKey string. kind bytes keep the
// cases disjoint, so argKey equality coincides with TermKey equality.
type argKey struct {
	kind byte // 'i' integer, 'c' constant, 'x' TermKey fallback
	num  int
	str  string
}

func termArgKey(t Term) argKey {
	switch tt := t.(type) {
	case Integer:
		return argKey{kind: 'i', num: tt.Value}
	case Constant:
		return argKey{kind: 'c', str: tt.Name}
	default:
		return argKey{kind: 'x', str: TermKey(t)}
	}
}

// relation is the set of domain atoms of one predicate, as interned ids
// in insertion order, with lazily built per-argument exact-term indexes.
type relation struct {
	ids []int32
	// argIndex[i] maps termArgKey(arg i) -> ids having that argument; nil
	// until first used.
	argIndex []map[argKey][]int32
}

func newRelation(arity int) *relation {
	return &relation{argIndex: make([]map[argKey][]int32, arity)}
}

// newRel returns an empty relation for the arity, recycling a released
// one when available. Recycled index maps are cleared here, before any
// add, so a non-nil per-argument map is always in sync with ids.
func (g *grounder) newRel(arity int) *relation {
	n := len(g.relFree)
	if n == 0 {
		return newRelation(arity)
	}
	r := g.relFree[n-1]
	g.relFree[n-1] = nil
	g.relFree = g.relFree[:n-1]
	r.ids = r.ids[:0]
	if cap(r.argIndex) < arity {
		r.argIndex = make([]map[argKey][]int32, arity)
		return r
	}
	r.argIndex = r.argIndex[:arity]
	for _, m := range r.argIndex {
		if m != nil {
			clear(m)
		}
	}
	return r
}

func (r *relation) add(id int32, a Atom) {
	r.ids = append(r.ids, id)
	for i, m := range r.argIndex {
		if m == nil {
			continue
		}
		k := termArgKey(a.Args[i])
		m[k] = append(m[k], id)
	}
}

// popLast removes the most recently added id (which must correspond to
// atom a) from the relation and any built indexes.
func (r *relation) popLast(a Atom) {
	r.ids = r.ids[:len(r.ids)-1]
	for i, m := range r.argIndex {
		if m == nil {
			continue
		}
		k := termArgKey(a.Args[i])
		lst := m[k]
		if len(lst) <= 1 {
			delete(m, k)
		} else {
			m[k] = lst[:len(lst)-1]
		}
	}
}

// index returns the per-argument index for position arg, building it on
// first use.
func (r *relation) index(arg int, in *Interner) map[argKey][]int32 {
	if r.argIndex[arg] == nil {
		m := make(map[argKey][]int32, len(r.ids))
		for _, id := range r.ids {
			k := termArgKey(in.atoms[id].Args[arg])
			m[k] = append(m[k], id)
		}
		r.argIndex[arg] = m
	}
	return r.argIndex[arg]
}

// indexMinFacts is the relation size below which a full scan beats index
// probing.
const indexMinFacts = 8

// candidates narrows the fact ids a pattern atom can match: for each
// argument that is ground under the current binding, probe that
// argument's index and keep the smallest bucket.
func (r *relation) candidates(pattern Atom, b Binding, g *grounder) []int32 {
	if g.opts.StringKeyed || len(r.ids) < indexMinFacts {
		return r.ids
	}
	best := r.ids
	for i, t := range pattern.Args {
		sub := substTerm(t, b)
		if !sub.Ground() {
			continue
		}
		ev, err := EvalArith(sub)
		if err != nil {
			// The argument cannot evaluate; no fact can match (the
			// per-term matcher fails the same way).
			return nil
		}
		lst := r.index(i, g.in)[termArgKey(ev)]
		if len(lst) < len(best) {
			best = lst
		}
		if len(best) == 0 {
			return nil
		}
	}
	return best
}

type grounder struct {
	opts GroundingOptions

	in *Interner
	// inDomain[id] marks atoms in the derivable over-approximation (an
	// interned atom may appear only under negation and stay outside it).
	inDomain []bool
	domainN  int

	rel   map[predKey]*relation
	delta map[predKey][]int32
	// relFree recycles relation objects across Ground calls on a pooled
	// grounder (id slices and index-map buckets keep their capacity).
	relFree []*relation

	// pending collects ground rule instances before finalization.
	pending []groundInstance

	// Journal for incremental grounding rollback.
	journal     bool
	addedDomain []int32
	newRels     []predKey

	// Scratch for instantiateAgainst and finalize. Grounding is
	// sequential within a grounder, so one set of buffers suffices;
	// instantiateAgainst is not re-entrant.
	sDone    []bool
	sMatched []int32
	sTr      bindTrail
	keySc    keyScratch
	remap    []int32
	seen     map[string]struct{}

	// Scratch and arena for the plan VM (plan.go): variable registers,
	// choice-stack frames, interner probe buffers, and the instance-id
	// arena. Like the trail scratch, per-grounder and not re-entrant.
	regs   []Term
	frames []vmFrame
	keyBuf []byte
	argBuf []Term
	arena  i32Arena

	// Per-call metric accumulators, flushed once per Ground/Extend.
	scanned      int64
	planCompiles int64
	planHits     int64

	// planTrace, when non-nil, collects PlanInfo for every plan compiled
	// through this grounder (GroundWithPlans introspection).
	planTrace *[]PlanInfo
}

// grounderPool recycles batch grounders between Ground calls: the
// interner's atom slice and key map, the relation map, scratch buffers
// and the instance arena all keep their capacity, so repeated grounding
// of small programs (the regenerate/adapt hot path) stops paying
// per-call re-growth.
var grounderPool = sync.Pool{New: func() any {
	return &grounder{
		in:  NewInterner(),
		rel: make(map[predKey]*relation),
		sTr: bindTrail{b: make(Binding, 8)},
	}
}}

func newGrounder(opts GroundingOptions) *grounder {
	g := grounderPool.Get().(*grounder)
	g.opts = opts
	return g
}

// release resets the grounder and returns it to the pool. Only the
// batch paths (Ground, GroundWithPlans) release: their finalize copies
// everything the returned program needs. Incremental grounders are
// never released — their finalized programs alias the live atom table.
func (g *grounder) release() {
	g.in.reset()
	g.inDomain = g.inDomain[:0]
	g.domainN = 0
	for pk, r := range g.rel {
		g.relFree = append(g.relFree, r)
		delete(g.rel, pk)
	}
	g.delta = nil
	g.pending = g.pending[:0]
	g.journal = false
	g.addedDomain = g.addedDomain[:0]
	g.newRels = g.newRels[:0]
	g.arena.reset()
	clear(g.regs) // drop Term references; capacity stays
	g.planTrace = nil
	grounderPool.Put(g)
}

// groundInstance is a fully instantiated rule over global interner ids.
type groundInstance struct {
	head int32 // -1 for constraints
	pos  []int32
	neg  []int32
}

// fixpoint runs semi-naive evaluation of the definite rules.
func (g *grounder) fixpoint(rules []*plannedRule) error {
	// g.delta is live on entry: groundPlanned seeds it with the facts.

	// Round 0: rules with no positive atom literals (rules bound purely
	// by equalities/comparisons).
	for _, pr := range rules {
		if len(pr.posIdx) == 0 {
			if err := g.instantiate(pr, -1, nil); err != nil {
				return err
			}
		}
	}

	for len(g.delta) > 0 {
		if g.opts.MaxAtoms > 0 && g.domainN > g.opts.MaxAtoms {
			return fmt.Errorf("grounding exceeded %d atoms", g.opts.MaxAtoms)
		}
		prevDelta := g.delta
		g.delta = make(map[predKey][]int32)
		for _, pr := range rules {
			if len(pr.posIdx) == 0 {
				continue
			}
			if g.opts.Naive {
				if err := g.instantiate(pr, -1, nil); err != nil {
					return err
				}
				continue
			}
			// Semi-naive: require one positive literal to match the
			// delta; try each position in turn.
			for k := range pr.posIdx {
				if err := g.instantiate(pr, k, prevDelta); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// bindTrail is a mutable binding with an undo log: matching binds in
// place and backtracking truncates, avoiding a map clone per candidate
// fact.
type bindTrail struct {
	b     Binding
	names []string
}

func (t *bindTrail) bind(name string, val Term) {
	t.b[name] = val
	t.names = append(t.names, name)
}

func (t *bindTrail) mark() int { return len(t.names) }

func (t *bindTrail) undo(m int) {
	for i := len(t.names) - 1; i >= m; i-- {
		delete(t.b, t.names[i])
	}
	t.names = t.names[:m]
}

// arithBlocked reports whether the pattern atom has an unbound variable
// inside an arithmetic subterm — such an argument can only be evaluated,
// not enumerated, so the literal must wait for the binding.
func arithBlocked(a Atom, b Binding) bool {
	blocked := false
	var walk func(t Term, inArith bool)
	walk = func(t Term, inArith bool) {
		if blocked {
			return
		}
		switch tt := t.(type) {
		case Variable:
			if inArith {
				if _, ok := b[tt.Name]; !ok {
					blocked = true
				}
			}
		case Compound:
			for _, x := range tt.Args {
				walk(x, inArith)
			}
		case Arith:
			walk(tt.L, true)
			walk(tt.R, true)
		case Range:
			walk(tt.Lo, true)
			walk(tt.Hi, true)
		}
	}
	for _, t := range a.Args {
		walk(t, false)
	}
	return blocked
}

// unboundVarCount counts variable occurrences of t not bound in b.
func unboundVarCount(t Term, b Binding) int {
	n := 0
	walkTermVars(t, func(v Variable) {
		if _, ok := b[v.Name]; !ok {
			n++
		}
	})
	return n
}

// binderSides recognizes a binder equality V = expr (or expr = V): an
// unbound variable on one side, the other side fully bound.
func binderSides(l Literal, b Binding) (Variable, Term, bool) {
	if vv, ok := l.Lhs.(Variable); ok {
		if _, bound := b[vv.Name]; !bound && unboundVarCount(l.Rhs, b) == 0 {
			return vv, l.Rhs, true
		}
	}
	if vv, ok := l.Rhs.(Variable); ok {
		if _, bound := b[vv.Name]; !bound && unboundVarCount(l.Lhs, b) == 0 {
			return vv, l.Lhs, true
		}
	}
	return Variable{}, nil, false
}

func (g *grounder) instantiateAgainst(r Rule, deltaPos int, delta map[predKey][]int32) error {
	// Backtracking join over body literals. Literals are processed
	// greedily: a positive atom literal is always processable (its
	// unbound variables enumerate the relation); a comparison is
	// processable once its variables are bound, except V = expr which is
	// processable when expr's variables are bound; a negative literal is
	// processed at the end (checked against the domain when producing the
	// instance).
	n := len(r.Body)
	g.sDone = grow(g.sDone, n)
	if cap(g.sMatched) < n {
		g.sMatched = make([]int32, n)
	}
	g.sMatched = g.sMatched[:n]
	done := g.sDone
	matched := g.sMatched
	tr := &g.sTr
	tr.undo(0)

	var step func(remaining int) error
	step = func(remaining int) error {
		if remaining == 0 {
			return g.emitInstance(r, tr.b, matched)
		}
		// Pick the next processable literal.
		pick := -1
		var pickKind int // 0 = positive atom, 1 = binder equality, 2 = ground comparison, 3 = ground negative
		for i := range done {
			if done[i] {
				continue
			}
			l := &r.Body[i]
			if !l.IsCmp && !l.Negated {
				// A positive literal is deferred while variables inside its
				// arithmetic subterms are unbound: the matcher can only
				// evaluate such arguments, never enumerate them, so
				// scheduling it earlier would silently match nothing.
				if pick == -1 && !arithBlocked(l.Atom, tr.b) {
					pick, pickKind = i, 0
				}
				continue
			}
			if l.IsCmp {
				if unboundVarCount(l.Lhs, tr.b) == 0 && unboundVarCount(l.Rhs, tr.b) == 0 {
					pick, pickKind = i, 2
					break // ground comparisons filter earliest
				}
				if l.Op == CmpEq {
					if _, _, ok := binderSides(*l, tr.b); ok {
						pick, pickKind = i, 1
						break
					}
				}
				continue
			}
			// Negative literal: processable when ground; defer as late as
			// possible but acceptable when ground.
			if pick == -1 {
				ground := true
				for _, t := range l.Atom.Args {
					if unboundVarCount(t, tr.b) > 0 {
						ground = false
						break
					}
				}
				if ground {
					pick, pickKind = i, 3
				}
			}
		}
		if pick == -1 {
			// Nothing processable: all remaining literals are stuck.
			// Safety rules this out except for cyclic arithmetic
			// dependencies between literals; report which literals and
			// variables are blocked.
			return stuckRuleError(r, done, func(name string) bool {
				_, ok := tr.b[name]
				return ok
			})
		}

		done[pick] = true
		defer func() { done[pick] = false }()
		l := r.Body[pick]

		switch pickKind {
		case 0: // positive atom: enumerate matching relation atoms
			pk := atomPredKey(l.Atom)
			var cands []int32
			if deltaPos == pick {
				cands = delta[pk]
			} else if rel := g.rel[pk]; rel != nil {
				cands = rel.candidates(l.Atom, tr.b, g)
			}
			for _, id := range cands {
				g.scanned++
				m := tr.mark()
				if matchAtomTrail(l.Atom, g.in.atoms[id], tr) {
					matched[pick] = id
					if err := step(remaining - 1); err != nil {
						tr.undo(m)
						return err
					}
				}
				tr.undo(m)
			}
			return nil
		case 1: // binder equality V = expr
			v, expr, ok := binderSides(l, tr.b)
			if !ok {
				return fmt.Errorf("grounder lost binder equality in rule %q", r.String())
			}
			val, err := EvalArith(substTerm(expr, tr.b))
			if err != nil {
				return err
			}
			m := tr.mark()
			tr.bind(v.Name, val)
			err = step(remaining - 1)
			tr.undo(m)
			return err
		case 2: // ground comparison
			ok, err := EvalCmp(Literal{IsCmp: true, Op: l.Op,
				Lhs: substTerm(l.Lhs, tr.b), Rhs: substTerm(l.Rhs, tr.b), Pos: l.Pos})
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			return step(remaining - 1)
		default: // ground negative literal: domain membership decided at finalize
			return step(remaining - 1)
		}
	}
	return step(n)
}

// matchAtomTrail unifies a (possibly non-ground) pattern atom against a
// ground fact, binding variables on the trail. On failure the caller must
// undo to its mark (partial bindings may remain).
func matchAtomTrail(pattern, fact Atom, tr *bindTrail) bool {
	if pattern.Predicate != fact.Predicate || len(pattern.Args) != len(fact.Args) {
		return false
	}
	for i := range pattern.Args {
		if !matchTermTrail(pattern.Args[i], fact.Args[i], tr) {
			return false
		}
	}
	return true
}

func matchTermTrail(pattern, ground Term, tr *bindTrail) bool {
	switch pt := pattern.(type) {
	case Variable:
		if bound, ok := tr.b[pt.Name]; ok {
			return termEq(bound, ground)
		}
		tr.bind(pt.Name, ground)
		return true
	case Arith:
		// Arithmetic in a body pattern: evaluable only if already bound.
		sub := pt.substitute(tr.b)
		if !sub.Ground() {
			return false
		}
		val, err := EvalArith(sub)
		if err != nil {
			return false
		}
		return termEq(val, ground)
	case Compound:
		gt, ok := ground.(Compound)
		if !ok || gt.Functor != pt.Functor || len(gt.Args) != len(pt.Args) {
			return false
		}
		for i := range pt.Args {
			if !matchTermTrail(pt.Args[i], gt.Args[i], tr) {
				return false
			}
		}
		return true
	default:
		return TermsEqual(substTerm(pattern, tr.b), ground)
	}
}

// matchAtom unifies a pattern atom against a ground fact, extending
// binding b into a fresh binding. Returns nil when no match. Retained for
// one-shot evaluation (EvalRule), where no trail is threaded.
func matchAtom(pattern, fact Atom, b Binding) Binding {
	if pattern.Predicate != fact.Predicate || len(pattern.Args) != len(fact.Args) {
		return nil
	}
	tr := bindTrail{b: b.clone()}
	for i := range pattern.Args {
		if !matchTermTrail(pattern.Args[i], fact.Args[i], &tr) {
			return nil
		}
	}
	return tr.b
}

// emitInstance records a fully bound rule instance: positive body atoms
// are the matched fact ids, negative atoms are interned (without joining
// the domain), the head atom is evaluated and added to the domain.
func (g *grounder) emitInstance(r Rule, b Binding, matched []int32) error {
	inst := groundInstance{head: -1}
	for i, l := range r.Body {
		if l.IsCmp {
			continue
		}
		if !l.Negated {
			inst.pos = append(inst.pos, matched[i])
			continue
		}
		ev, err := evalAtomArgs(l.Atom.Substitute(b))
		if err != nil {
			return err
		}
		inst.neg = append(inst.neg, g.internAtom(ev))
	}
	if r.Head != nil {
		ev, err := evalAtomArgs(r.Head.Substitute(b))
		if err != nil {
			return err
		}
		if !ev.Ground() {
			return fmt.Errorf("non-ground head %s after substitution of %q", ev, r.String())
		}
		inst.head = g.addAtom(ev)
	}
	g.pending = append(g.pending, inst)
	return nil
}

func evalAtomArgs(a Atom) (Atom, error) {
	if len(a.Args) == 0 {
		return a, nil
	}
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		ev, err := EvalArith(t)
		if err != nil {
			return Atom{}, err
		}
		args[i] = ev
	}
	return Atom{Predicate: a.Predicate, Args: args}, nil
}

// internAtom interns an atom without adding it to the domain.
func (g *grounder) internAtom(a Atom) int32 {
	id := g.in.Intern(a)
	for int(id) >= len(g.inDomain) {
		g.inDomain = append(g.inDomain, false)
	}
	return id
}

// addAtom interns an atom and adds it to the domain, relations and the
// current delta.
func (g *grounder) addAtom(a Atom) int32 {
	id := g.internAtom(a)
	g.addAtomID(id)
	return id
}

// addAtomID adds an already-interned atom to the domain, relations and
// the current delta (no-op when already in the domain).
func (g *grounder) addAtomID(id int32) {
	if g.inDomain[id] {
		return
	}
	g.inDomain[id] = true
	g.domainN++
	a := g.in.atoms[id]
	pk := atomPredKey(a)
	rel := g.rel[pk]
	if rel == nil {
		rel = g.newRel(pk.arity)
		g.rel[pk] = rel
		if g.journal {
			g.newRels = append(g.newRels, pk)
		}
	}
	rel.add(id, a)
	g.delta[pk] = append(g.delta[pk], id)
	if g.journal {
		g.addedDomain = append(g.addedDomain, id)
	}
}

// finalize interns pending instances into a fresh, compacted ground
// program: ids are re-numbered densely over the atoms that actually occur
// in finalized rules, negative literals whose atom is outside the domain
// are dropped (vacuously true), and duplicate rules are removed.
func (g *grounder) finalize() *GroundProgram {
	out := &GroundProgram{
		Atoms: make([]Atom, 0, g.in.Len()),
		Rules: make([]GroundRule, 0, len(g.pending)),
		// index stays nil; AtomID builds it on demand.
	}
	g.remap = grow(g.remap, g.in.Len())
	remap := g.remap
	for i := range remap {
		remap[i] = -1
	}
	intern := func(gid int32) int32 {
		if remap[gid] >= 0 {
			return remap[gid]
		}
		id := int32(len(out.Atoms))
		out.Atoms = append(out.Atoms, g.in.atoms[gid])
		remap[gid] = id
		return id
	}
	// All rule bodies are carved from one block owned by the output
	// program; the exact pre-sizing means append never reallocates, so
	// earlier carves stay valid.
	total := 0
	for _, inst := range g.pending {
		total += len(inst.pos) + len(inst.neg)
	}
	block := make([]int32, 0, total)
	if g.seen == nil {
		g.seen = make(map[string]struct{}, len(g.pending))
	}
	seen := g.seen
	for _, inst := range g.pending {
		start := len(block)
		gr := GroundRule{Head: -1}
		for _, gid := range inst.pos {
			block = append(block, intern(gid))
		}
		mid := len(block)
		for _, gid := range inst.neg {
			if !g.inDomain[gid] {
				continue // vacuously true
			}
			block = append(block, intern(gid))
		}
		if mid > start {
			gr.PosBody = block[start:mid:mid]
		}
		if len(block) > mid {
			gr.NegBody = block[mid:len(block):len(block)]
		}
		if inst.head >= 0 {
			gr.Head = intern(inst.head)
		}
		key := g.keySc.ruleKey(gr)
		if _, dup := seen[string(key)]; dup {
			block = block[:start]
			continue
		}
		seen[string(key)] = struct{}{}
		out.Rules = append(out.Rules, gr)
	}
	clear(seen)
	g.pending = g.pending[:0]
	return out
}

// keyScratch renders canonical ground-rule dedup keys ("head:pos,...|
// neg,..." with body ids sorted) into a reusable buffer, so duplicate
// probes via map[string]X lookups on string(buf) never allocate; only a
// first-seen insert copies the key.
type keyScratch struct {
	buf []byte
	pos []int32
	neg []int32
}

func (k *keyScratch) ruleKey(r GroundRule) []byte {
	k.pos = append(k.pos[:0], r.PosBody...)
	k.neg = append(k.neg[:0], r.NegBody...)
	slices.Sort(k.pos)
	slices.Sort(k.neg)
	buf := k.buf[:0]
	buf = strconv.AppendInt(buf, int64(r.Head), 10)
	buf = append(buf, ':')
	for _, id := range k.pos {
		buf = strconv.AppendInt(buf, int64(id), 10)
		buf = append(buf, ',')
	}
	buf = append(buf, '|')
	for _, id := range k.neg {
		buf = strconv.AppendInt(buf, int64(id), 10)
		buf = append(buf, ',')
	}
	k.buf = buf
	return buf
}
