package asp

import (
	"fmt"
	"sort"
	"strings"
)

// VarOccurrence is one source occurrence of a variable in a rule.
type VarOccurrence struct {
	Name string
	Pos  Pos
}

// SafetyError reports an unsafe rule: a variable not bound by any
// positive body literal or computable equality.
type SafetyError struct {
	Rule Rule
	Vars []string
	// Occurrences lists every occurrence of each unsafe variable in
	// source order. Positions are valid when the rule was parsed from
	// text.
	Occurrences []VarOccurrence
}

func (e *SafetyError) Error() string {
	where := ""
	if e.Rule.Pos.Valid() {
		where = fmt.Sprintf(" at %s", e.Rule.Pos)
	}
	return fmt.Sprintf("unsafe rule%s %q: unbound variables %s",
		where, e.Rule.String(), describeOccurrences(e.Vars, e.Occurrences))
}

// describeOccurrences renders "X (1:3, 1:9), Y (2:4)"; variables without
// positioned occurrences render as bare names.
func describeOccurrences(vars []string, occs []VarOccurrence) string {
	var sb strings.Builder
	for i, v := range vars {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v)
		var at []string
		for _, o := range occs {
			if o.Name == v && o.Pos.Valid() {
				at = append(at, o.Pos.String())
			}
		}
		if len(at) > 0 {
			sb.WriteString(" (")
			sb.WriteString(strings.Join(at, ", "))
			sb.WriteByte(')')
		}
	}
	return sb.String()
}

// walkTermVars visits every variable occurrence of a term, including
// occurrences inside compound, arithmetic and range subterms.
func walkTermVars(t Term, f func(v Variable)) {
	switch tt := t.(type) {
	case Variable:
		f(tt)
	case Compound:
		for _, a := range tt.Args {
			walkTermVars(a, f)
		}
	case Arith:
		walkTermVars(tt.L, f)
		walkTermVars(tt.R, f)
	case Range:
		walkTermVars(tt.Lo, f)
		walkTermVars(tt.Hi, f)
	}
}

// ruleVarOccurrences collects every occurrence of the named variables in
// the rule, in source order: head, choice atoms, then body literals.
func ruleVarOccurrences(r Rule, names map[string]struct{}) []VarOccurrence {
	var out []VarOccurrence
	visit := func(v Variable) {
		if _, ok := names[v.Name]; ok {
			out = append(out, VarOccurrence{Name: v.Name, Pos: v.Pos})
		}
	}
	if r.Head != nil {
		for _, t := range r.Head.Args {
			walkTermVars(t, visit)
		}
	}
	for _, a := range r.Choice {
		for _, t := range a.Args {
			walkTermVars(t, visit)
		}
	}
	for _, l := range r.Body {
		if l.IsCmp {
			walkTermVars(l.Lhs, visit)
			walkTermVars(l.Rhs, visit)
			continue
		}
		for _, t := range l.Atom.Args {
			walkTermVars(t, visit)
		}
	}
	return out
}

// GroundRule is a fully instantiated rule over interned atom ids.
// Head == -1 denotes a constraint.
type GroundRule struct {
	Head    int
	PosBody []int
	NegBody []int
}

// GroundProgram is the result of grounding: an atom table plus ground
// rules referencing atoms by id.
type GroundProgram struct {
	Atoms []Atom // id -> atom
	Rules []GroundRule

	index map[string]int // atom key -> id
}

// AtomID returns the id of a ground atom, or -1 if the atom does not
// occur in the ground program.
func (g *GroundProgram) AtomID(a Atom) int {
	if id, ok := g.index[a.Key()]; ok {
		return id
	}
	return -1
}

// NumAtoms returns the number of distinct ground atoms.
func (g *GroundProgram) NumAtoms() int { return len(g.Atoms) }

// String renders the ground program in ASP syntax.
func (g *GroundProgram) String() string {
	var sb strings.Builder
	for _, r := range g.Rules {
		if r.Head >= 0 {
			sb.WriteString(g.Atoms[r.Head].String())
		}
		if len(r.PosBody)+len(r.NegBody) > 0 {
			sb.WriteString(" :- ")
			first := true
			for _, id := range r.PosBody {
				if !first {
					sb.WriteString(", ")
				}
				sb.WriteString(g.Atoms[id].String())
				first = false
			}
			for _, id := range r.NegBody {
				if !first {
					sb.WriteString(", ")
				}
				sb.WriteString("not " + g.Atoms[id].String())
				first = false
			}
		}
		sb.WriteString(".\n")
	}
	return sb.String()
}

// GroundingOptions configures the grounder.
type GroundingOptions struct {
	// Naive disables the semi-naive delta optimisation (every round
	// re-instantiates every rule against the full relations). Exposed for
	// the ablation benchmark; results are identical.
	Naive bool

	// MaxAtoms aborts grounding when the domain exceeds this many atoms
	// (0 = unlimited). Guards against runaway programs.
	MaxAtoms int
}

// Ground instantiates a program into a GroundProgram under the standard
// bottom-up over-approximation: the atom domain is the least fixpoint of
// the rules with negative literals ignored; rule instances whose negative
// atoms are not in the domain have those literals removed (they are
// vacuously true).
//
// Choice rules are compiled into pairs of normal rules over fresh
// complement atoms before grounding, so the resulting ground program
// contains only normal rules and constraints.
func Ground(p *Program, opts GroundingOptions) (*GroundProgram, error) {
	expanded, err := expandRanges(p)
	if err != nil {
		return nil, err
	}
	normal, err := compileChoices(expanded)
	if err != nil {
		return nil, err
	}
	for _, r := range normal.Rules {
		if err := CheckSafety(r); err != nil {
			return nil, err
		}
	}

	g := &grounder{
		opts:      opts,
		relations: make(map[string]map[string]Atom),
		out: &GroundProgram{
			index: make(map[string]int),
		},
		seenRules: make(map[string]struct{}),
	}

	var defRules, constraints []Rule
	for _, r := range normal.Rules {
		if r.IsConstraint() {
			constraints = append(constraints, r)
		} else {
			defRules = append(defRules, r)
		}
	}

	if err := g.fixpoint(defRules); err != nil {
		return nil, err
	}
	// Ground constraints in one pass against the final relations.
	for _, c := range constraints {
		if err := g.instantiateAll(c); err != nil {
			return nil, err
		}
	}
	g.finalize()
	return g.out, nil
}

// compileChoices rewrites every choice rule {a1;...;ak} :- body into, for
// each i, the pair
//
//	ai  :- body, not _ci.
//	_ci :- body, not ai.
//
// where _ci is a fresh atom carrying the variables of ai and body. This is
// the standard encoding of choice under stable-model semantics.
func compileChoices(p *Program) (*Program, error) {
	out := &Program{Rules: make([]Rule, 0, len(p.Rules))}
	fresh := 0
	for _, r := range p.Rules {
		if !r.IsChoice() {
			out.Rules = append(out.Rules, r)
			continue
		}
		ruleVars := make([]string, 0, 4)
		seen := make(map[string]struct{})
		for v := range r.Variables() {
			if _, ok := seen[v]; !ok {
				seen[v] = struct{}{}
				ruleVars = append(ruleVars, v)
			}
		}
		sort.Strings(ruleVars)
		varTerms := make([]Term, len(ruleVars))
		for i, v := range ruleVars {
			varTerms[i] = Variable{Name: v}
		}
		for i, a := range r.Choice {
			comp := Atom{
				Predicate: fmt.Sprintf("_choice_%d_%d", fresh, i),
				Args:      varTerms,
			}
			posRule := Rule{Head: &Atom{Predicate: a.Predicate, Args: a.Args, Pos: a.Pos}, Pos: r.Pos}
			posRule.Body = append(append([]Literal{}, r.Body...), Neg(comp))
			compRule := Rule{Head: &comp, Pos: r.Pos}
			compRule.Body = append(append([]Literal{}, r.Body...), Neg(a))
			out.Rules = append(out.Rules, posRule, compRule)
		}
		fresh++
	}
	return out, nil
}

// CheckSafety verifies that every variable of the rule is bound: it
// occurs in a positive body atom literal outside arithmetic, or in an
// equality V = expr (or expr = V) whose other side only uses bound
// variables. Binding propagates to a fixpoint.
func CheckSafety(r Rule) error {
	bound := make(map[string]struct{})
	varsOfTermOutsideArith := func(t Term, into map[string]struct{}) {
		var walk func(t Term)
		walk = func(t Term) {
			switch tt := t.(type) {
			case Variable:
				into[tt.Name] = struct{}{}
			case Compound:
				for _, a := range tt.Args {
					walk(a)
				}
			case Arith:
				// Variables inside arithmetic are *used*, not bound.
			}
		}
		walk(t)
	}
	for _, l := range r.Body {
		if !l.IsCmp && !l.Negated {
			for _, t := range l.Atom.Args {
				varsOfTermOutsideArith(t, bound)
			}
		}
	}
	// Propagate through equalities.
	changed := true
	for changed {
		changed = false
		for _, l := range r.Body {
			if !l.IsCmp || l.Op != CmpEq {
				continue
			}
			tryBind := func(v Term, other Term) {
				vv, ok := v.(Variable)
				if !ok {
					return
				}
				if _, already := bound[vv.Name]; already {
					return
				}
				otherVars := make(map[string]struct{})
				other.collectVars(otherVars)
				for ov := range otherVars {
					if _, ok := bound[ov]; !ok {
						return
					}
				}
				bound[vv.Name] = struct{}{}
				changed = true
			}
			tryBind(l.Lhs, l.Rhs)
			tryBind(l.Rhs, l.Lhs)
		}
	}
	var unbound []string
	for v := range r.Variables() {
		if _, ok := bound[v]; !ok {
			unbound = append(unbound, v)
		}
	}
	if len(unbound) > 0 {
		sort.Strings(unbound)
		names := make(map[string]struct{}, len(unbound))
		for _, v := range unbound {
			names[v] = struct{}{}
		}
		return &SafetyError{Rule: r, Vars: unbound, Occurrences: ruleVarOccurrences(r, names)}
	}
	return nil
}

type grounder struct {
	opts GroundingOptions

	// relations: predicate -> atom key -> atom (the domain so far).
	relations map[string]map[string]Atom
	// delta: atoms added in the previous round, per predicate.
	delta map[string]map[string]Atom

	out       *GroundProgram
	seenRules map[string]struct{}

	// pending collects ground rule instances before interning.
	pending []groundInstance
}

type groundInstance struct {
	head *Atom // nil for constraints
	pos  []Atom
	neg  []Atom
}

func (g *grounder) atomCount() int {
	n := 0
	for _, rel := range g.relations {
		n += len(rel)
	}
	return n
}

// fixpoint runs semi-naive evaluation of the definite rules.
func (g *grounder) fixpoint(rules []Rule) error {
	g.delta = make(map[string]map[string]Atom)

	// Round 0: rules with no positive atom literals (facts and rules
	// bound purely by equalities/comparisons).
	for _, r := range rules {
		hasPos := false
		for _, l := range r.Body {
			if !l.IsCmp && !l.Negated {
				hasPos = true
				break
			}
		}
		if !hasPos {
			if err := g.instantiate(r, -1, nil); err != nil {
				return err
			}
		}
	}

	for len(g.delta) > 0 {
		if g.opts.MaxAtoms > 0 && g.atomCount() > g.opts.MaxAtoms {
			return fmt.Errorf("grounding exceeded %d atoms", g.opts.MaxAtoms)
		}
		prevDelta := g.delta
		g.delta = make(map[string]map[string]Atom)
		for _, r := range rules {
			posIdx := positiveIndices(r)
			if len(posIdx) == 0 {
				continue
			}
			if g.opts.Naive {
				if err := g.instantiateAgainst(r, -1, nil); err != nil {
					return err
				}
				continue
			}
			// Semi-naive: require one positive literal to match the
			// delta; try each position in turn.
			for _, di := range posIdx {
				if err := g.instantiateAgainst(r, di, prevDelta); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func positiveIndices(r Rule) []int {
	var idx []int
	for i, l := range r.Body {
		if !l.IsCmp && !l.Negated {
			idx = append(idx, i)
		}
	}
	return idx
}

// instantiate instantiates rule r; deltaPos (when >= 0) is the body
// position that must match an atom from the delta relation.
func (g *grounder) instantiate(r Rule, deltaPos int, delta map[string]map[string]Atom) error {
	return g.instantiateAgainst(r, deltaPos, delta)
}

// instantiateAll grounds a rule (typically a constraint) against the full
// relations only.
func (g *grounder) instantiateAll(r Rule) error {
	return g.instantiateAgainst(r, -1, nil)
}

func (g *grounder) instantiateAgainst(r Rule, deltaPos int, delta map[string]map[string]Atom) error {
	// Backtracking join over body literals. Literals are processed
	// greedily: a positive atom literal is always processable (its
	// unbound variables enumerate the relation); a comparison is
	// processable once its variables are bound, except V = expr which is
	// processable when expr's variables are bound; a negative literal is
	// processed at the end (checked against the domain when producing the
	// instance).
	type litState struct {
		lit  Literal
		done bool
	}
	states := make([]litState, len(r.Body))
	for i, l := range r.Body {
		states[i] = litState{lit: l}
	}

	var emit func(b Binding) error
	emit = func(b Binding) error {
		return g.emitInstance(r, b)
	}

	var step func(b Binding, remaining int) error
	step = func(b Binding, remaining int) error {
		if remaining == 0 {
			return emit(b)
		}
		// Pick the next processable literal.
		pick := -1
		var pickKind int // 0 = positive atom, 1 = binder equality, 2 = ground comparison
		for i := range states {
			if states[i].done {
				continue
			}
			l := states[i].lit
			if !l.IsCmp && !l.Negated {
				if pick == -1 {
					pick = i
					pickKind = 0
				}
				continue
			}
			if l.IsCmp {
				lsub := l.Substitute(b)
				lvars, rvars := make(map[string]struct{}), make(map[string]struct{})
				lsub.Lhs.collectVars(lvars)
				lsub.Rhs.collectVars(rvars)
				if len(lvars) == 0 && len(rvars) == 0 {
					pick, pickKind = i, 2
					break // ground comparisons filter earliest
				}
				if l.Op == CmpEq {
					if _, isVar := lsub.Lhs.(Variable); isVar && len(rvars) == 0 {
						pick, pickKind = i, 1
						break
					}
					if _, isVar := lsub.Rhs.(Variable); isVar && len(lvars) == 0 {
						pick, pickKind = i, 1
						break
					}
				}
				continue
			}
			// Negative literal: processable when ground; defer as late as
			// possible but acceptable when ground.
			lsub := l.Substitute(b)
			if lsub.Atom.Ground() && pick == -1 {
				pick, pickKind = i, 3
			}
		}
		if pick == -1 {
			// Nothing processable: all remaining literals are stuck.
			// Safety guarantees this cannot happen for satisfiable
			// orderings; report an error to surface bugs.
			return fmt.Errorf("grounder stuck on rule %q (bound: %v)", r.String(), b)
		}

		states[pick].done = true
		defer func() { states[pick].done = false }()
		l := states[pick].lit.Substitute(b)

		switch pickKind {
		case 0: // positive atom: enumerate matching relation atoms
			rel := g.relations[l.Atom.Predicate]
			useDelta := deltaPos == pick
			if useDelta {
				rel = delta[l.Atom.Predicate]
			}
			for _, fact := range rel {
				nb := matchAtom(l.Atom, fact, b)
				if nb == nil {
					continue
				}
				if err := step(nb, remaining-1); err != nil {
					return err
				}
			}
			return nil
		case 1: // binder equality V = expr
			v, expr := l.Lhs, l.Rhs
			if _, isVar := v.(Variable); !isVar {
				v, expr = l.Rhs, l.Lhs
			}
			val, err := EvalArith(expr)
			if err != nil {
				return err
			}
			nb := b.clone()
			nb[v.(Variable).Name] = val
			return step(nb, remaining-1)
		case 2: // ground comparison
			ok, err := EvalCmp(l)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			return step(b, remaining-1)
		default: // ground negative literal: domain membership decided at emit
			return step(b, remaining-1)
		}
	}
	return step(Binding{}, len(r.Body))
}

// matchAtom unifies a (possibly non-ground, arithmetic-free after
// substitution except for evaluable args) pattern atom against a ground
// fact, extending binding b. Returns nil when no match.
func matchAtom(pattern, fact Atom, b Binding) Binding {
	if pattern.Predicate != fact.Predicate || len(pattern.Args) != len(fact.Args) {
		return nil
	}
	nb := b.clone()
	for i := range pattern.Args {
		if !matchTerm(pattern.Args[i], fact.Args[i], nb) {
			return nil
		}
	}
	return nb
}

func matchTerm(pattern, ground Term, b Binding) bool {
	switch pt := pattern.(type) {
	case Variable:
		if bound, ok := b[pt.Name]; ok {
			return TermsEqual(bound, ground)
		}
		b[pt.Name] = ground
		return true
	case Arith:
		// Arithmetic in a body pattern: evaluable only if already bound.
		sub := pt.substitute(b)
		if !sub.Ground() {
			return false
		}
		val, err := EvalArith(sub)
		if err != nil {
			return false
		}
		return TermsEqual(val, ground)
	case Compound:
		gt, ok := ground.(Compound)
		if !ok || gt.Functor != pt.Functor || len(gt.Args) != len(pt.Args) {
			return false
		}
		for i := range pt.Args {
			if !matchTerm(pt.Args[i], gt.Args[i], b) {
				return false
			}
		}
		return true
	default:
		return TermsEqual(pattern.substitute(b), ground)
	}
}

// emitInstance records a fully bound rule instance: evaluates head
// arithmetic, adds the head atom to the relations/delta, and stores the
// instance for interning.
func (g *grounder) emitInstance(r Rule, b Binding) error {
	inst := groundInstance{}
	for _, l := range r.Body {
		if l.IsCmp {
			continue
		}
		ls := l.Substitute(b)
		ev, err := evalAtomArgs(ls.Atom)
		if err != nil {
			return err
		}
		if l.Negated {
			inst.neg = append(inst.neg, ev)
		} else {
			inst.pos = append(inst.pos, ev)
		}
	}
	if r.Head != nil {
		h := r.Head.Substitute(b)
		ev, err := evalAtomArgs(h)
		if err != nil {
			return err
		}
		if !ev.Ground() {
			return fmt.Errorf("non-ground head %s after substitution of %q", ev, r.String())
		}
		inst.head = &ev
		g.addAtom(ev)
	}
	g.pending = append(g.pending, inst)
	return nil
}

func evalAtomArgs(a Atom) (Atom, error) {
	if len(a.Args) == 0 {
		return a, nil
	}
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		ev, err := EvalArith(t)
		if err != nil {
			return Atom{}, err
		}
		args[i] = ev
	}
	return Atom{Predicate: a.Predicate, Args: args}, nil
}

func (g *grounder) addAtom(a Atom) {
	key := a.Key()
	rel, ok := g.relations[a.Predicate]
	if !ok {
		rel = make(map[string]Atom)
		g.relations[a.Predicate] = rel
	}
	if _, exists := rel[key]; exists {
		return
	}
	rel[key] = a
	d, ok := g.delta[a.Predicate]
	if !ok {
		d = make(map[string]Atom)
		g.delta[a.Predicate] = d
	}
	d[key] = a
}

// finalize interns pending instances into the output ground program,
// dropping negative literals whose atom is outside the domain and
// dropping rules with a positive literal outside the domain (cannot
// happen for definite-derived instances, but constraints may mention
// underivable atoms).
func (g *grounder) finalize() {
	inDomain := func(a Atom) bool {
		rel, ok := g.relations[a.Predicate]
		if !ok {
			return false
		}
		_, ok = rel[a.Key()]
		return ok
	}
	intern := func(a Atom) int {
		key := a.Key()
		if id, ok := g.out.index[key]; ok {
			return id
		}
		id := len(g.out.Atoms)
		g.out.Atoms = append(g.out.Atoms, a)
		g.out.index[key] = id
		return id
	}

	for _, inst := range g.pending {
		gr := GroundRule{Head: -1}
		skip := false
		for _, a := range inst.pos {
			if !inDomain(a) {
				skip = true
				break
			}
			gr.PosBody = append(gr.PosBody, intern(a))
		}
		if skip {
			continue
		}
		for _, a := range inst.neg {
			if !inDomain(a) {
				continue // vacuously true
			}
			gr.NegBody = append(gr.NegBody, intern(a))
		}
		if inst.head != nil {
			gr.Head = intern(*inst.head)
		}
		key := groundRuleKey(gr)
		if _, seen := g.seenRules[key]; seen {
			continue
		}
		g.seenRules[key] = struct{}{}
		g.out.Rules = append(g.out.Rules, gr)
	}
	g.pending = nil
}

func groundRuleKey(r GroundRule) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d:", r.Head)
	pos := append([]int(nil), r.PosBody...)
	neg := append([]int(nil), r.NegBody...)
	sort.Ints(pos)
	sort.Ints(neg)
	for _, id := range pos {
		fmt.Fprintf(&sb, "%d,", id)
	}
	sb.WriteByte('|')
	for _, id := range neg {
		fmt.Fprintf(&sb, "%d,", id)
	}
	return sb.String()
}
