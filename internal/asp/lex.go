package asp

import (
	"fmt"
	"strconv"
	"unicode"
)

// tokenKind enumerates lexical token categories.
type tokenKind int

const (
	tokEOF      tokenKind = iota + 1
	tokIdent              // lowercase identifier
	tokVariable           // uppercase identifier or leading underscore
	tokInt
	tokString // double-quoted
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
	tokSemi
	tokDot
	tokIf    // :-
	tokNot   // not
	tokCmp   // = != < <= > >=
	tokArith // + - * / \
	tokAt    // @ (used by the ASG layer for annotations)
	tokHash  // # (directives)
	tokRange // .. (integer intervals)
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset in input
	line int
	col  int // 1-based byte column within the line
}

// lex tokenizes an ASP source string. Comments run from '%' to end of
// line. Lexical errors are reported as *ParseError with the offending
// position.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	lineStart := 0 // byte offset where the current line begins
	i := 0
	n := len(src)
	col := func(pos int) int { return pos - lineStart + 1 }
	emit := func(k tokenKind, text string, pos int) {
		toks = append(toks, token{kind: k, text: text, pos: pos, line: line, col: col(pos)})
	}
	errAt := func(pos int, format string, args ...any) error {
		return &ParseError{Line: line, Col: col(pos), Msg: fmt.Sprintf(format, args...)}
	}
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
			lineStart = i
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '%':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '(':
			emit(tokLParen, "(", i)
			i++
		case c == ')':
			emit(tokRParen, ")", i)
			i++
		case c == '{':
			emit(tokLBrace, "{", i)
			i++
		case c == '}':
			emit(tokRBrace, "}", i)
			i++
		case c == ',':
			emit(tokComma, ",", i)
			i++
		case c == ';':
			emit(tokSemi, ";", i)
			i++
		case c == '.':
			if i+1 < n && src[i+1] == '.' {
				emit(tokRange, "..", i)
				i += 2
			} else {
				emit(tokDot, ".", i)
				i++
			}
		case c == '@':
			emit(tokAt, "@", i)
			i++
		case c == '#':
			emit(tokHash, "#", i)
			i++
		case c == ':':
			if i+1 < n && src[i+1] == '-' {
				emit(tokIf, ":-", i)
				i += 2
			} else {
				return nil, errAt(i, "unexpected ':'")
			}
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				emit(tokCmp, "!=", i)
				i += 2
			} else {
				return nil, errAt(i, "unexpected '!'")
			}
		case c == '=':
			emit(tokCmp, "=", i)
			i++
		case c == '<':
			if i+1 < n && src[i+1] == '=' {
				emit(tokCmp, "<=", i)
				i += 2
			} else {
				emit(tokCmp, "<", i)
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				emit(tokCmp, ">=", i)
				i += 2
			} else {
				emit(tokCmp, ">", i)
				i++
			}
		case c == '+' || c == '*' || c == '/' || c == '\\':
			emit(tokArith, string(c), i)
			i++
		case c == '-':
			// A minus is either arithmetic or the sign of an integer
			// literal; the parser disambiguates, the lexer always emits
			// an arithmetic token unless directly followed by a digit at
			// a position where a term may start.
			emit(tokArith, "-", i)
			i++
		case c == '"':
			start := i
			startLine, startCol := line, col(i)
			j := i + 1
			var text []byte
			closed := false
			for j < n {
				if src[j] == '\\' && j+1 < n {
					text = append(text, src[j+1])
					j += 2
					continue
				}
				if src[j] == '"' {
					closed = true
					break
				}
				if src[j] == '\n' {
					line++
					lineStart = j + 1
				}
				text = append(text, src[j])
				j++
			}
			if !closed {
				return nil, &ParseError{Line: startLine, Col: startCol, Msg: "unterminated string literal"}
			}
			toks = append(toks, token{kind: tokString, text: string(text), pos: start, line: startLine, col: startCol})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < n && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			emit(tokInt, src[i:j], i)
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(src[j])) {
				j++
			}
			word := src[i:j]
			switch {
			case word == "not":
				emit(tokNot, word, i)
			case unicode.IsUpper(rune(word[0])) || word[0] == '_':
				emit(tokVariable, word, i)
			default:
				emit(tokIdent, word, i)
			}
			i = j
		default:
			return nil, errAt(i, "unexpected character %q", c)
		}
	}
	emit(tokEOF, "", i)
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// mustInt converts token text to int; the lexer guarantees digits only.
func mustInt(text string) int {
	v, err := strconv.Atoi(text)
	if err != nil {
		return 0
	}
	return v
}
