package asp

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token categories.
type tokenKind int

const (
	tokEOF      tokenKind = iota + 1
	tokIdent              // lowercase identifier
	tokVariable           // uppercase identifier or leading underscore
	tokInt
	tokString // double-quoted
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
	tokSemi
	tokDot
	tokIf    // :-
	tokNot   // not
	tokCmp   // = != < <= > >=
	tokArith // + - * / \
	tokAt    // @ (used by the ASG layer for annotations)
	tokHash  // # (directives)
	tokRange // .. (integer intervals)
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset in input
	line int
}

// lexError reports a lexical error with line information.
type lexError struct {
	line int
	msg  string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("line %d: %s", e.line, e.msg)
}

// lex tokenizes an ASP source string. Comments run from '%' to end of
// line.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	emit := func(k tokenKind, text string, pos int) {
		toks = append(toks, token{kind: k, text: text, pos: pos, line: line})
	}
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '%':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '(':
			emit(tokLParen, "(", i)
			i++
		case c == ')':
			emit(tokRParen, ")", i)
			i++
		case c == '{':
			emit(tokLBrace, "{", i)
			i++
		case c == '}':
			emit(tokRBrace, "}", i)
			i++
		case c == ',':
			emit(tokComma, ",", i)
			i++
		case c == ';':
			emit(tokSemi, ";", i)
			i++
		case c == '.':
			if i+1 < n && src[i+1] == '.' {
				emit(tokRange, "..", i)
				i += 2
			} else {
				emit(tokDot, ".", i)
				i++
			}
		case c == '@':
			emit(tokAt, "@", i)
			i++
		case c == '#':
			emit(tokHash, "#", i)
			i++
		case c == ':':
			if i+1 < n && src[i+1] == '-' {
				emit(tokIf, ":-", i)
				i += 2
			} else {
				return nil, &lexError{line: line, msg: "unexpected ':'"}
			}
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				emit(tokCmp, "!=", i)
				i += 2
			} else {
				return nil, &lexError{line: line, msg: "unexpected '!'"}
			}
		case c == '=':
			emit(tokCmp, "=", i)
			i++
		case c == '<':
			if i+1 < n && src[i+1] == '=' {
				emit(tokCmp, "<=", i)
				i += 2
			} else {
				emit(tokCmp, "<", i)
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				emit(tokCmp, ">=", i)
				i += 2
			} else {
				emit(tokCmp, ">", i)
				i++
			}
		case c == '+' || c == '*' || c == '/' || c == '\\':
			emit(tokArith, string(c), i)
			i++
		case c == '-':
			// A minus is either arithmetic or the sign of an integer
			// literal; the parser disambiguates, the lexer always emits
			// an arithmetic token unless directly followed by a digit at
			// a position where a term may start.
			emit(tokArith, "-", i)
			i++
		case c == '"':
			j := i + 1
			var sb strings.Builder
			closed := false
			for j < n {
				if src[j] == '\\' && j+1 < n {
					sb.WriteByte(src[j+1])
					j += 2
					continue
				}
				if src[j] == '"' {
					closed = true
					break
				}
				if src[j] == '\n' {
					line++
				}
				sb.WriteByte(src[j])
				j++
			}
			if !closed {
				return nil, &lexError{line: line, msg: "unterminated string literal"}
			}
			emit(tokString, sb.String(), i)
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < n && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			emit(tokInt, src[i:j], i)
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(src[j])) {
				j++
			}
			word := src[i:j]
			switch {
			case word == "not":
				emit(tokNot, word, i)
			case unicode.IsUpper(rune(word[0])) || word[0] == '_':
				emit(tokVariable, word, i)
			default:
				emit(tokIdent, word, i)
			}
			i = j
		default:
			return nil, &lexError{line: line, msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	emit(tokEOF, "", i)
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// mustInt converts token text to int; the lexer guarantees digits only.
func mustInt(text string) int {
	v, err := strconv.Atoi(text)
	if err != nil {
		return 0
	}
	return v
}
