package asp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"
)

// modelSet canonicalizes a list of answer sets for set comparison:
// each model prints its atoms sorted, and the models themselves are
// sorted, so two enumerations agree iff they found the same sets.
func modelSet(models []*AnswerSet) []string {
	out := make([]string, len(models))
	for i, m := range models {
		out[i] = m.String()
	}
	sort.Strings(out)
	return out
}

func solveBothEngines(t *testing.T, src string, opts SolveOptions) (cdnl, dfs []string) {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	g, err := Ground(prog, GroundingOptions{})
	if err != nil {
		t.Fatalf("ground %q: %v", src, err)
	}
	opts.Engine = EngineCDNL
	mc, err := SolveGround(g, opts)
	if err != nil {
		t.Fatalf("cdnl solve %q: %v", src, err)
	}
	opts.Engine = EngineDFS
	md, err := SolveGround(g, opts)
	if err != nil {
		t.Fatalf("dfs solve %q: %v", src, err)
	}
	return modelSet(mc), modelSet(md)
}

// TestSolveEnginesNonTight pins the CDNL engine to the DFS oracle (and
// to expected answer sets) on programs with positive loops, where the
// completion alone is too weak and the unfounded-set check must fire.
func TestSolveEnginesNonTight(t *testing.T) {
	cases := []struct {
		src  string
		want []string
	}{
		{"p :- p.", []string{"{}"}},
		{"a :- b. b :- a.", []string{"{}"}},
		{"a :- b. b :- a. a :- not c. c :- not a.", []string{"{a, b}", "{c}"}},
		{"x :- y. y :- x. x :- not z. z :- not x.", []string{"{x, y}", "{z}"}},
		// Completion-satisfying but unfounded: {p, q} solves the
		// completion of the loop yet must be rejected.
		{"p :- q. q :- p. r :- not r, not p.", nil},
		{"a :- b. b :- a. a :- c. c :- not d. d :- not c.", []string{"{a, b, c}", "{d}"}},
		// Two independent loops, one externally supported.
		{"a :- b. b :- a. c :- d. d :- c. b :- e. e.", []string{"{a, b, e}"}},
		// Loop through a constraint-guarded choice.
		{"{g}. p :- q. q :- p. p :- g. :- not p.", []string{"{g, p, q}"}},
		{"p :- not p.", nil},
	}
	for _, tc := range cases {
		cdnl, dfs := solveBothEngines(t, tc.src, SolveOptions{})
		if fmt.Sprint(cdnl) != fmt.Sprint(dfs) {
			t.Errorf("%q: engines disagree: cdnl=%v dfs=%v", tc.src, cdnl, dfs)
		}
		want := tc.want
		if want == nil {
			want = []string{}
		}
		if fmt.Sprint(cdnl) != fmt.Sprint(want) {
			t.Errorf("%q: got %v, want %v", tc.src, cdnl, want)
		}
	}
}

// TestSolveEnginesCorpusEquivalence runs both engines over the
// deterministic random-program corpus and requires identical answer-set
// sets, plus identical output across repeated CDNL runs (enumeration
// must be deterministic).
func TestSolveEnginesCorpusEquivalence(t *testing.T) {
	for seed := 0; seed < 600; seed++ {
		src := randomProgram(seed)
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		g, err := Ground(prog, GroundingOptions{})
		if err != nil {
			t.Fatalf("seed %d: ground: %v", seed, err)
		}
		mc1, err := SolveGround(g, SolveOptions{Engine: EngineCDNL})
		if err != nil {
			t.Fatalf("seed %d: cdnl: %v", seed, err)
		}
		mc2, err := SolveGround(g, SolveOptions{Engine: EngineCDNL})
		if err != nil {
			t.Fatalf("seed %d: cdnl rerun: %v", seed, err)
		}
		for i := range mc1 {
			if mc1[i].String() != mc2[i].String() {
				t.Fatalf("seed %d: cdnl enumeration not deterministic", seed)
			}
		}
		md, err := SolveGround(g, SolveOptions{Engine: EngineDFS})
		if err != nil {
			t.Fatalf("seed %d: dfs: %v", seed, err)
		}
		sc, sd := modelSet(mc1), modelSet(md)
		if fmt.Sprint(sc) != fmt.Sprint(sd) {
			t.Fatalf("seed %d: engines disagree on %q:\ncdnl: %v\ndfs:  %v", seed, src, sc, sd)
		}
		for _, m := range mc1 {
			if !verifyStable(g, m) {
				t.Fatalf("seed %d: cdnl model %s not stable for %q", seed, m, src)
			}
		}
	}
}

// chainProgram builds a ground implication chain a0, a1 :- a0, ...,
// aN :- aN-1 directly (no parser), long enough that solving it passes
// through the propagation-loop context poll at least once.
func chainProgram(n int) *GroundProgram {
	g := &GroundProgram{}
	for i := 0; i < n; i++ {
		g.Atoms = append(g.Atoms, Atom{Predicate: fmt.Sprintf("a%d", i)})
	}
	g.Rules = append(g.Rules, GroundRule{Head: 0})
	for i := 1; i < n; i++ {
		g.Rules = append(g.Rules, GroundRule{Head: int32(i), PosBody: []int32{int32(i - 1)}})
	}
	return g
}

// TestCDNLContextCancel: a cancelled context aborts the solve from
// inside unit propagation (the chain forces >4096 propagations before
// any decision), and the same scratch solves cleanly afterwards — a
// stale context error must not leak across runs.
func TestCDNLContextCancel(t *testing.T) {
	g := chainProgram(3 * (ctxCheckMask + 1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc := &SolverScratch{}
	_, err := SolveGroundScratch(g, SolveOptions{Context: ctx}, sc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled solve: got err %v, want context.Canceled", err)
	}
	// Reuse the same scratch without a context: must fully succeed.
	models, err := SolveGroundScratch(g, SolveOptions{}, sc)
	if err != nil {
		t.Fatalf("reuse after cancel: %v", err)
	}
	if len(models) != 1 || models[0].Len() != len(g.Atoms) {
		t.Fatalf("reuse after cancel: got %d models, want the full chain", len(models))
	}
}

// TestDFSContextCancel covers the oracle engine's per-decision poll.
func TestDFSContextCancel(t *testing.T) {
	prog, err := Parse("{a; b; c; d; e; f; g; h; i; j}.")
	if err != nil {
		t.Fatal(err)
	}
	g, err := Ground(prog, GroundingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = SolveGround(g, SolveOptions{Engine: EngineDFS, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
}

// TestCDNLDecisionBudget: MaxDecisions aborts enumeration with
// ErrSearchBudget on both engines.
func TestCDNLDecisionBudget(t *testing.T) {
	prog, err := Parse("{a; b; c; d; e; f; g; h; i; j; k; l}.")
	if err != nil {
		t.Fatal(err)
	}
	g, err := Ground(prog, GroundingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []EngineKind{EngineCDNL, EngineDFS} {
		_, err := SolveGround(g, SolveOptions{Engine: eng, MaxDecisions: 10})
		if !errors.Is(err, ErrSearchBudget) {
			t.Errorf("engine %v: got err %v, want ErrSearchBudget", eng, err)
		}
	}
}

// TestCDNLMaxModels: the model budget truncates enumeration without
// error, and every returned model is stable.
func TestCDNLMaxModels(t *testing.T) {
	src := "a1 :- not b1. b1 :- not a1. a2 :- not b2. b2 :- not a2. a3 :- not b3. b3 :- not a3."
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Ground(prog, GroundingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	models, err := SolveGround(g, SolveOptions{MaxModels: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 5 {
		t.Fatalf("got %d models, want 5", len(models))
	}
	for _, m := range models {
		if !verifyStable(g, m) {
			t.Fatalf("model %s not stable", m)
		}
	}
}

// TestSolveScratchReuseNoLeak mirrors the checker leak tests: a long
// sequence of solves on one scratch — large programs, cancelled solves,
// small programs — must neither leak goroutines nor let stale buffers
// corrupt later results.
func TestSolveScratchReuseNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	sc := &SolverScratch{}
	big := chainProgram(2 * (ctxCheckMask + 1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 3; i++ {
		if _, err := SolveGroundScratch(big, SolveOptions{Context: ctx}, sc); !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: want context.Canceled, got %v", i, err)
		}
		prog, err := Parse("a :- not b. b :- not a. c :- a. :- b.")
		if err != nil {
			t.Fatal(err)
		}
		g, err := Ground(prog, GroundingOptions{})
		if err != nil {
			t.Fatal(err)
		}
		models, err := SolveGroundScratch(g, SolveOptions{}, sc)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if got := fmt.Sprint(modelSet(models)); got != "[{a, c}]" {
			t.Fatalf("round %d: got %s, want [{a, c}]", i, got)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}
