package asp

// Compiled grounding plans. Instead of re-scanning the rule body on
// every recursive step to greedily pick the next literal (and binding
// variables through a map[string]Term), each rule is compiled once into
// an executable plan: variables are numbered into dense registers, the
// literal join order is fixed up front per (rule, delta-position) by a
// bound-prefix/selectivity heuristic, and the result is lowered to a
// flat op list (index scan / delta scan / bind / compare / emit)
// executed by a small iterative VM with an explicit choice stack.
//
// Plans are cached on the plannedRule keyed by delta slot, so the
// fixpoint pays compilation once per (rule, slot) and every later round
// is a cache hit. A plannedRule may be shared by several grounders (the
// learner compiles each candidate rule once and extends many
// per-example grounders with it); the join order is chosen with the
// relation sizes of the first grounder that compiles the slot, but the
// order's *correctness* depends only on the rule itself — boundness
// constraints are static — so sharing is safe. The legacy greedy path
// is kept behind GroundingOptions.NaivePlan as the differential oracle.

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// ---------------------------------------------------------------------
// Compiled expressions over registers
// ---------------------------------------------------------------------

type ceKind uint8

const (
	ceConst    ceKind = iota // pre-evaluated ground term
	ceReg                    // register read
	ceArith                  // arithmetic node
	ceCompound               // compound constructor
	ceOpaque                 // fallback: substitute registers, EvalArith
)

// cExpr is a term compiled against a rule's register frame: variables
// are register reads, ground subterms are folded to constants at
// compile time, and arithmetic is evaluated without re-boxing a
// substituted tree. src retains the source term for the slow error
// path, which reproduces EvalArith's exact diagnostics.
type cExpr struct {
	kind    ceKind
	op      ArithOp
	reg     int32
	k       Term
	functor string
	args    []cExpr
	src     Term
}

func (pr *plannedRule) compileExpr(t Term) cExpr {
	if t.Ground() {
		if ev, err := EvalArith(t); err == nil {
			return cExpr{kind: ceConst, k: ev, src: t}
		}
		// Ground but erroring (e.g. 1/0): keep the runtime error path.
		return cExpr{kind: ceOpaque, src: t}
	}
	switch tt := t.(type) {
	case Variable:
		return cExpr{kind: ceReg, reg: int32(pr.reg(tt.Name)), src: t}
	case Arith:
		return cExpr{
			kind: ceArith, op: tt.Op,
			args: []cExpr{pr.compileExpr(tt.L), pr.compileExpr(tt.R)},
			src:  t,
		}
	case Compound:
		args := make([]cExpr, len(tt.Args))
		for i, a := range tt.Args {
			args[i] = pr.compileExpr(a)
		}
		return cExpr{kind: ceCompound, functor: tt.Functor, args: args, src: t}
	default:
		return cExpr{kind: ceOpaque, src: t}
	}
}

// evalExpr evaluates a compiled expression over the register frame.
// Error diagnostics are produced by re-running EvalArith on the
// substituted source term, so they match the greedy path exactly.
func evalExpr(e *cExpr, pr *plannedRule, regs []Term) (Term, error) {
	switch e.kind {
	case ceConst:
		return e.k, nil
	case ceReg:
		return regs[e.reg], nil
	case ceArith:
		lt, err := evalExpr(&e.args[0], pr, regs)
		if err != nil {
			return nil, err
		}
		rt, err := evalExpr(&e.args[1], pr, regs)
		if err != nil {
			return nil, err
		}
		li, lok := lt.(Integer)
		ri, rok := rt.(Integer)
		if !lok || !rok {
			return slowEvalErr(e, pr, regs)
		}
		switch e.op {
		case OpAdd:
			return Integer{Value: li.Value + ri.Value}, nil
		case OpSub:
			return Integer{Value: li.Value - ri.Value}, nil
		case OpMul:
			return Integer{Value: li.Value * ri.Value}, nil
		case OpDiv:
			if ri.Value == 0 {
				return slowEvalErr(e, pr, regs)
			}
			return Integer{Value: li.Value / ri.Value}, nil
		case OpMod:
			if ri.Value == 0 {
				return slowEvalErr(e, pr, regs)
			}
			return Integer{Value: li.Value % ri.Value}, nil
		default:
			return slowEvalErr(e, pr, regs)
		}
	case ceCompound:
		args := make([]Term, len(e.args))
		for i := range e.args {
			v, err := evalExpr(&e.args[i], pr, regs)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return Compound{Functor: e.functor, Args: args}, nil
	default: // ceOpaque
		return EvalArith(substTerm(e.src, pr.regBinding(regs)))
	}
}

// slowEvalErr reproduces the canonical EvalArith error for a failing
// compiled expression (cold path; allocation is fine here).
func slowEvalErr(e *cExpr, pr *plannedRule, regs []Term) (Term, error) {
	_, err := EvalArith(substTerm(e.src, pr.regBinding(regs)))
	if err == nil {
		err = fmt.Errorf("arithmetic evaluation failed for %s", e.src)
	}
	return nil, err
}

// regBinding materializes the register frame as a Binding (error and
// diagnostic paths only).
func (pr *plannedRule) regBinding(regs []Term) Binding {
	b := make(Binding, len(pr.vars))
	for i, name := range pr.vars {
		if i < len(regs) && regs[i] != nil {
			b[name] = regs[i]
		}
	}
	return b
}

// ---------------------------------------------------------------------
// Pattern matchers
// ---------------------------------------------------------------------

type amKind uint8

const (
	amBind     amKind = iota // first occurrence: store the fact arg
	amCheckReg               // later occurrence: compare to register
	amConst                  // compare to a pre-evaluated ground term
	amExpr                   // evaluate expr over registers, compare
	amStruct                 // destructure a compound fact arg
)

// argMatch matches one pattern position against a ground fact subterm.
// The kind is fixed at plan-compile time from the static bound set, so
// the hot loop never consults a binding map: a first variable
// occurrence is an unconditional register store, later occurrences are
// register compares.
type argMatch struct {
	kind    amKind
	reg     int32
	k       Term
	expr    *cExpr
	functor string
	sub     []argMatch
}

// compileMatch lowers one pattern term, updating the static bound set.
func (pr *plannedRule) compileMatch(t Term, bound []bool) argMatch {
	if t.Ground() {
		if ev, err := EvalArith(t); err == nil {
			return argMatch{kind: amConst, k: ev}
		}
		e := pr.compileExpr(t)
		return argMatch{kind: amExpr, expr: &e}
	}
	switch tt := t.(type) {
	case Variable:
		r := pr.reg(tt.Name)
		if bound[r] {
			return argMatch{kind: amCheckReg, reg: int32(r)}
		}
		bound[r] = true
		return argMatch{kind: amBind, reg: int32(r)}
	case Compound:
		sub := make([]argMatch, len(tt.Args))
		for i, a := range tt.Args {
			sub[i] = pr.compileMatch(a, bound)
		}
		return argMatch{kind: amStruct, functor: tt.Functor, sub: sub}
	default:
		// Arith (vars guaranteed bound by scheduling) or exotic terms:
		// evaluate and compare, failing the match on evaluation errors —
		// the same outcome as the trail matcher.
		e := pr.compileExpr(t)
		return argMatch{kind: amExpr, expr: &e}
	}
}

// matchArgs matches compiled arg patterns against the args of a
// candidate fact. Registers bound by a failed partial match are never
// read before being rebound, so no undo trail is needed.
func (g *grounder) matchArgs(ms []argMatch, args []Term, pr *plannedRule) bool {
	regs := g.regs
	for i := range ms {
		m := &ms[i]
		switch m.kind {
		case amBind:
			regs[m.reg] = args[i]
		case amCheckReg:
			if !termEq(regs[m.reg], args[i]) {
				return false
			}
		case amConst:
			if !termEq(m.k, args[i]) {
				return false
			}
		case amExpr:
			v, err := evalExpr(m.expr, pr, regs)
			if err != nil || !termEq(v, args[i]) {
				return false
			}
		default: // amStruct
			c, ok := args[i].(Compound)
			if !ok || c.Functor != m.functor || len(c.Args) != len(m.sub) {
				return false
			}
			if !g.matchArgs(m.sub, c.Args, pr) {
				return false
			}
		}
	}
	return true
}

// ---------------------------------------------------------------------
// Plan ops
// ---------------------------------------------------------------------

type opKind uint8

const (
	opScan      opKind = iota // enumerate a relation, match the pattern
	opScanDelta               // enumerate the round's delta instead
	opBind                    // reg := eval(expr)  (binder equality)
	opCmp                     // filter on a ground comparison
	opEmit                    // record the instance
)

// probeArg is one fully-bound scan argument usable for index probing.
type probeArg struct {
	argPos int
	expr   cExpr
}

type planOp struct {
	kind   opKind
	lit    int // body literal index
	pred   predKey
	match  []argMatch
	probes []probeArg
	reg    int32
	cop    CmpOp
	e1, e2 cExpr
}

// groundPlan is the executable form of one (rule, delta-slot) pair.
type groundPlan struct {
	ops  []planOp
	join []int // scheduled positive-literal body indices, in order
}

// planResult pairs a compiled plan with its compile error (a rule that
// cannot be fully scheduled — the "stuck" case — fails for every
// grounder identically, so the error is cached like a plan).
type planResult struct {
	plan *groundPlan
	err  error
}

// ---------------------------------------------------------------------
// plannedRule: per-rule compile-once state
// ---------------------------------------------------------------------

type litKind uint8

const (
	litPos litKind = iota
	litNeg
	litCmp
)

// planLit is the static metadata of one body literal used by the
// join-order heuristic.
type planLit struct {
	kind litKind
	// allVars are the registers occurring anywhere in the literal.
	allVars []int
	// needVars are the registers that must already be bound before the
	// literal can be scheduled: for positive atoms, variables occurring
	// inside arithmetic subterms (the matcher can only evaluate them);
	// for comparisons, all variables.
	needVars []int
	// Comparison sides (cmp literals only).
	lhsVars, rhsVars []int
	lhsVar, rhsVar   int // register when the side is a bare variable, else -1
}

// atomTemplate is a head or negative-body atom compiled for emission.
type atomTemplate struct {
	pred string
	args []cExpr
}

// plannedRule is a rule compiled for planned grounding: dense variable
// registers, per-literal metadata, emission templates, and a plan cache
// keyed by delta slot. Safe for concurrent use by multiple grounders
// (plan slots are atomic pointers; everything else is immutable after
// newPlannedRule).
type plannedRule struct {
	rule    Rule
	isCon   bool
	vars    []string // register -> variable name
	body    []planLit
	posIdx  []int     // body indices of positive atom literals
	posPred []predKey // parallel to posIdx
	negs    []atomTemplate
	headTpl *atomTemplate

	planAll   atomic.Pointer[planResult]   // delta slot -1
	planDelta []atomic.Pointer[planResult] // per posIdx slot
}

// reg returns the register of a variable name, allocating the next
// dense register on first sight. Rules have a handful of variables, so
// a linear scan beats a map. After newPlannedRule returns, every
// variable of the rule has a register, so later calls (plan compiles,
// possibly concurrent) are pure lookups and never mutate vars.
func (pr *plannedRule) reg(name string) int {
	for i, v := range pr.vars {
		if v == name {
			return i
		}
	}
	pr.vars = append(pr.vars, name)
	return len(pr.vars) - 1
}

// collectPlanVars registers every variable of the term, splitting
// occurrences inside arithmetic (which the matcher must evaluate, so
// they gate scheduling) from plain occurrences.
func (pr *plannedRule) collectPlanVars(t Term, inArith bool, all, need *[]int) {
	switch tt := t.(type) {
	case Variable:
		r := pr.reg(tt.Name)
		*all = appendUniqueInt(*all, r)
		if inArith {
			*need = appendUniqueInt(*need, r)
		}
	case Compound:
		for _, a := range tt.Args {
			pr.collectPlanVars(a, inArith, all, need)
		}
	case Arith:
		pr.collectPlanVars(tt.L, true, all, need)
		pr.collectPlanVars(tt.R, true, all, need)
	case Range:
		pr.collectPlanVars(tt.Lo, true, all, need)
		pr.collectPlanVars(tt.Hi, true, all, need)
	}
}

func appendUniqueInt(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// newPlannedRule compiles the rule's static metadata: register
// numbering, literal classification, and emission templates. Join-order
// plans are compiled lazily per delta slot.
func newPlannedRule(r Rule) *plannedRule {
	pr := &plannedRule{rule: r, isCon: r.IsConstraint()}
	for i, l := range r.Body {
		var pl planLit
		switch {
		case l.IsCmp:
			pl.kind = litCmp
			pl.lhsVar, pl.rhsVar = -1, -1
			var scratch []int
			pr.collectPlanVars(l.Lhs, false, &pl.lhsVars, &scratch)
			pr.collectPlanVars(l.Rhs, false, &pl.rhsVars, &scratch)
			pl.allVars = append(pl.allVars, pl.lhsVars...)
			for _, v := range pl.rhsVars {
				pl.allVars = appendUniqueInt(pl.allVars, v)
			}
			pl.needVars = pl.allVars // a comparison filters only when ground
			if v, ok := l.Lhs.(Variable); ok {
				pl.lhsVar = pr.reg(v.Name)
			}
			if v, ok := l.Rhs.(Variable); ok {
				pl.rhsVar = pr.reg(v.Name)
			}
		case l.Negated:
			pl.kind = litNeg
			for _, t := range l.Atom.Args {
				pr.collectPlanVars(t, false, &pl.allVars, &pl.needVars)
			}
		default:
			pl.kind = litPos
			for _, t := range l.Atom.Args {
				pr.collectPlanVars(t, false, &pl.allVars, &pl.needVars)
			}
			pr.posIdx = append(pr.posIdx, i)
			pr.posPred = append(pr.posPred, atomPredKey(l.Atom))
		}
		pr.body = append(pr.body, pl)
	}
	// Emission templates: negative body atoms in body order, then the
	// head (matching the greedy emit order, including interning order).
	for _, l := range r.Body {
		if l.IsCmp || !l.Negated {
			continue
		}
		pr.negs = append(pr.negs, pr.compileAtomTemplate(l.Atom))
	}
	if r.Head != nil {
		tpl := pr.compileAtomTemplate(*r.Head)
		pr.headTpl = &tpl
	}
	pr.planDelta = make([]atomic.Pointer[planResult], len(pr.posIdx))
	return pr
}

func (pr *plannedRule) compileAtomTemplate(a Atom) atomTemplate {
	tpl := atomTemplate{pred: a.Predicate}
	if len(a.Args) > 0 {
		tpl.args = make([]cExpr, len(a.Args))
		for i, t := range a.Args {
			tpl.args[i] = pr.compileExpr(t)
		}
	}
	return tpl
}

// planFor returns the compiled plan for a delta slot (-1 = full join),
// compiling and caching it on first use. Lock-free: concurrent
// compiles of the same slot are benign (both plans are valid; the last
// store wins).
func (pr *plannedRule) planFor(slot int, g *grounder) (*groundPlan, error) {
	p := &pr.planAll
	if slot >= 0 {
		p = &pr.planDelta[slot]
	}
	if res := p.Load(); res != nil {
		g.planHits++
		return res.plan, res.err
	}
	plan, err := pr.compilePlan(slot, g)
	p.Store(&planResult{plan: plan, err: err})
	g.planCompiles++
	if g.planTrace != nil && err == nil {
		*g.planTrace = append(*g.planTrace, describePlan(pr, plan, slot))
	}
	return plan, err
}

// ---------------------------------------------------------------------
// Join-order heuristic and lowering
// ---------------------------------------------------------------------

// compilePlan chooses the literal join order for one delta slot and
// lowers it to ops. The order is built greedily over a static bound
// set:
//
//  1. Ground comparisons and binder equalities are hoisted to the
//     earliest point they become evaluable (textual order among
//     candidates, mirroring the greedy picker).
//  2. The delta literal is scheduled as soon as it is schedulable (its
//     candidates are the round's delta — typically the smallest
//     relation in the join).
//  3. Otherwise scans prefer literals with at least one fully-bound
//     argument (an index probe), then the smaller relation (sizes
//     observed at compile time), then textual order.
//
// A positive literal is schedulable only once the variables inside its
// arithmetic subterms are bound — the matcher must evaluate them.
// Negative literals never join; they are grounded at emission.
func (pr *plannedRule) compilePlan(slot int, g *grounder) (*groundPlan, error) {
	n := len(pr.body)
	bound := make([]bool, len(pr.vars))
	done := make([]bool, n)
	plan := &groundPlan{ops: make([]planOp, 0, n+1)}

	allBound := func(vars []int) bool {
		for _, v := range vars {
			if !bound[v] {
				return false
			}
		}
		return true
	}

	// flush hoists every evaluable comparison/binder, restarting the
	// textual scan after each emission like the greedy picker does.
	flush := func() {
		for {
			progressed := false
			for i := range pr.body {
				pl := &pr.body[i]
				if done[i] || pl.kind != litCmp {
					continue
				}
				l := &pr.rule.Body[i]
				if allBound(pl.allVars) {
					plan.ops = append(plan.ops, planOp{
						kind: opCmp, lit: i, cop: l.Op,
						e1: pr.compileExpr(l.Lhs), e2: pr.compileExpr(l.Rhs),
					})
					done[i] = true
					progressed = true
					break
				}
				if l.Op != CmpEq {
					continue
				}
				if pl.lhsVar >= 0 && !bound[pl.lhsVar] && allBound(pl.rhsVars) {
					plan.ops = append(plan.ops, planOp{
						kind: opBind, lit: i, reg: int32(pl.lhsVar), e1: pr.compileExpr(l.Rhs),
					})
					bound[pl.lhsVar] = true
					done[i] = true
					progressed = true
					break
				}
				if pl.rhsVar >= 0 && !bound[pl.rhsVar] && allBound(pl.lhsVars) {
					plan.ops = append(plan.ops, planOp{
						kind: opBind, lit: i, reg: int32(pl.rhsVar), e1: pr.compileExpr(l.Lhs),
					})
					bound[pl.rhsVar] = true
					done[i] = true
					progressed = true
					break
				}
			}
			if !progressed {
				return
			}
		}
	}

	countBoundArgs := func(li int) int {
		nb := 0
		for _, t := range pr.rule.Body[li].Atom.Args {
			if termBoundUnder(t, pr, bound) {
				nb++
			}
		}
		return nb
	}

	flush()
	for {
		pick, pickSlot := -1, -1
		var pickBound, pickSize int
		for k, li := range pr.posIdx {
			if done[li] {
				continue
			}
			if !allBound(pr.body[li].needVars) {
				continue
			}
			if k == slot {
				// Delta pinning: the delta literal wins outright.
				pick, pickSlot = li, k
				break
			}
			nb := countBoundArgs(li)
			size := 0
			if rel := g.rel[pr.posPred[k]]; rel != nil {
				size = len(rel.ids)
			}
			better := false
			switch {
			case pick == -1:
				better = true
			case (nb > 0) != (pickBound > 0):
				better = nb > 0
			case size != pickSize:
				better = size < pickSize
			}
			if better {
				pick, pickSlot = li, k
				pickBound, pickSize = nb, size
			}
		}
		if pick == -1 {
			break
		}
		op := planOp{kind: opScan, lit: pick, pred: pr.posPred[pickSlot]}
		if pickSlot == slot {
			op.kind = opScanDelta
		}
		// Index probes: arguments fully bound before this literal binds
		// anything.
		args := pr.rule.Body[pick].Atom.Args
		for ai, t := range args {
			if termBoundUnder(t, pr, bound) {
				op.probes = append(op.probes, probeArg{argPos: ai, expr: pr.compileExpr(t)})
			}
		}
		op.match = make([]argMatch, len(args))
		for ai, t := range args {
			op.match[ai] = pr.compileMatch(t, bound)
		}
		done[pick] = true
		plan.join = append(plan.join, pick)
		plan.ops = append(plan.ops, op)
		flush()
	}

	// Negative literals are resolved at emission; everything else must
	// have been scheduled.
	for i := range pr.body {
		if pr.body[i].kind == litNeg {
			done[i] = true
		}
	}
	for i := range done {
		if !done[i] {
			return nil, stuckRuleError(pr.rule, done, func(name string) bool {
				for r, v := range pr.vars {
					if v == name {
						return bound[r]
					}
				}
				return false
			})
		}
	}
	plan.ops = append(plan.ops, planOp{kind: opEmit})
	return plan, nil
}

// termBoundUnder reports whether every variable of the term is bound in
// the static bound set.
func termBoundUnder(t Term, pr *plannedRule, bound []bool) bool {
	ok := true
	walkTermVars(t, func(v Variable) {
		if !bound[pr.reg(v.Name)] {
			ok = false
		}
	})
	return ok
}

// stuckRuleError reports a rule whose remaining literals can never
// become processable: it names the rule's source position and each
// unresolved literal together with its unbound variables, so
// safety-check escapes are diagnosable from the message alone.
func stuckRuleError(r Rule, done []bool, isBound func(string) bool) error {
	var parts []string
	for i, l := range r.Body {
		if done[i] {
			continue
		}
		var unbound []string
		seen := map[string]bool{}
		for v := range l.Variables() {
			if !isBound(v) && !seen[v] {
				seen[v] = true
				unbound = append(unbound, v)
			}
		}
		sort.Strings(unbound)
		desc := l.String()
		if len(unbound) > 0 {
			desc += " (unbound " + strings.Join(unbound, ", ") + ")"
		}
		parts = append(parts, desc)
	}
	where := ""
	if r.Pos.Valid() {
		where = fmt.Sprintf(" at %s", r.Pos)
	}
	return fmt.Errorf("grounder stuck%s on rule %q: cannot schedule %s",
		where, r.String(), strings.Join(parts, "; "))
}

// ---------------------------------------------------------------------
// VM execution
// ---------------------------------------------------------------------

// vmFrame is one open scan: the op, its candidate list, and the cursor.
type vmFrame struct {
	pc    int32
	next  int32
	cands []int32
}

// planCandidates narrows the candidate facts of a scan op by probing
// the per-argument indexes with the op's fully-bound arguments,
// keeping the smallest bucket (the planned equivalent of
// relation.candidates).
func (g *grounder) planCandidates(rel *relation, op *planOp, pr *plannedRule) []int32 {
	if g.opts.StringKeyed || len(rel.ids) < indexMinFacts || len(op.probes) == 0 {
		return rel.ids
	}
	best := rel.ids
	for i := range op.probes {
		p := &op.probes[i]
		ev, err := evalExpr(&p.expr, pr, g.regs)
		if err != nil {
			// The argument cannot evaluate; no fact can match.
			return nil
		}
		lst := rel.index(p.argPos, g.in)[termArgKey(ev)]
		if len(lst) < len(best) {
			best = lst
		}
		if len(best) == 0 {
			return nil
		}
	}
	return best
}

// runPlan executes a compiled plan: an iterative backtracking join over
// the plan's ops with an explicit choice stack. No recursion, no
// closures, no binding maps — registers are plain slice stores.
func (g *grounder) runPlan(pr *plannedRule, plan *groundPlan, deltaCands []int32) error {
	if cap(g.regs) < len(pr.vars) {
		g.regs = make([]Term, len(pr.vars)+8)
	}
	g.regs = g.regs[:cap(g.regs)]
	if cap(g.sMatched) < len(pr.body) {
		g.sMatched = make([]int32, len(pr.body)+8)
	}
	g.sMatched = g.sMatched[:cap(g.sMatched)]
	frames := g.frames[:0]
	defer func() { g.frames = frames[:0] }()

	ops := plan.ops
	pc := 0
	for {
		op := &ops[pc]
		switch op.kind {
		case opScan, opScanDelta:
			var cands []int32
			if op.kind == opScanDelta {
				cands = deltaCands
			} else if rel := g.rel[op.pred]; rel != nil {
				cands = g.planCandidates(rel, op, pr)
			}
			frames = append(frames, vmFrame{pc: int32(pc), cands: cands})
		case opBind:
			v, err := evalExpr(&op.e1, pr, g.regs)
			if err != nil {
				return err
			}
			g.regs[op.reg] = v
			pc++
			continue
		case opCmp:
			lt, err := evalExpr(&op.e1, pr, g.regs)
			if err != nil {
				return err
			}
			rt, err := evalExpr(&op.e2, pr, g.regs)
			if err != nil {
				return err
			}
			if cmpHolds(op.cop, CompareTerms(lt, rt)) {
				pc++
				continue
			}
		default: // opEmit
			if err := g.emitPlanned(pr); err != nil {
				return err
			}
		}

		// Backtrack: advance the innermost open scan, popping exhausted
		// frames.
		advanced := false
		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			sop := &ops[fr.pc]
			atoms := g.in.atoms
			for int(fr.next) < len(fr.cands) {
				id := fr.cands[fr.next]
				fr.next++
				g.scanned++
				if g.matchArgs(sop.match, atoms[id].Args, pr) {
					g.sMatched[sop.lit] = id
					pc = int(fr.pc) + 1
					advanced = true
					break
				}
			}
			if advanced {
				break
			}
			frames = frames[:len(frames)-1]
		}
		if !advanced {
			return nil
		}
	}
}

func cmpHolds(op CmpOp, c int) bool {
	switch op {
	case CmpEq:
		return c == 0
	case CmpNeq:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLeq:
		return c <= 0
	case CmpGt:
		return c > 0
	default: // CmpGeq
		return c >= 0
	}
}

// emitPlanned records a fully bound instance: positive body ids from
// the matched slots, negative atoms and the head evaluated from their
// templates through the interner's key-probe fast path, with the id
// slices carved from the grounder's arena.
func (g *grounder) emitPlanned(pr *plannedRule) error {
	npos, nneg := len(pr.posIdx), len(pr.negs)
	buf := g.arena.alloc(npos + nneg)
	inst := groundInstance{head: -1}
	if npos > 0 {
		pos := buf[:npos:npos]
		for i, li := range pr.posIdx {
			pos[i] = g.sMatched[li]
		}
		inst.pos = pos
	}
	if nneg > 0 {
		neg := buf[npos:]
		for i := range pr.negs {
			id, err := g.internTemplate(&pr.negs[i], pr)
			if err != nil {
				return err
			}
			neg[i] = id
		}
		inst.neg = neg
	}
	if pr.headTpl != nil {
		id, err := g.internTemplate(pr.headTpl, pr)
		if err != nil {
			return err
		}
		g.addAtomID(id)
		inst.head = id
	}
	g.pending = append(g.pending, inst)
	return nil
}

// internTemplate evaluates an atom template over the registers and
// interns the result. The atom key is rendered into a reusable buffer
// and probed first, so re-derived atoms (the overwhelmingly common
// case in fixpoint rounds) intern without allocating.
func (g *grounder) internTemplate(t *atomTemplate, pr *plannedRule) (int32, error) {
	buf := g.keyBuf[:0]
	buf = append(buf, t.pred...)
	buf = append(buf, '/')
	args := g.argBuf[:0]
	for i := range t.args {
		v, err := evalExpr(&t.args[i], pr, g.regs)
		if err != nil {
			g.keyBuf = buf
			g.argBuf = args[:0]
			return -1, err
		}
		args = append(args, v)
		buf = appendTermKey(buf, v)
		buf = append(buf, ';')
	}
	g.keyBuf = buf
	g.argBuf = args[:0]
	return g.internKeyed(t.pred, buf, args), nil
}

// internGroundAtom interns a ground source atom (a fact head) through
// the same keyed probe as internTemplate, evaluating arithmetic per
// argument.
func (g *grounder) internGroundAtom(a Atom) (int32, error) {
	buf := g.keyBuf[:0]
	buf = append(buf, a.Predicate...)
	buf = append(buf, '/')
	args := g.argBuf[:0]
	for _, t := range a.Args {
		v, err := EvalArith(t)
		if err != nil {
			g.keyBuf = buf
			g.argBuf = args[:0]
			return -1, err
		}
		args = append(args, v)
		buf = appendTermKey(buf, v)
		buf = append(buf, ';')
	}
	g.keyBuf = buf
	g.argBuf = args[:0]
	return g.internKeyed(a.Predicate, buf, args), nil
}

// appendAtomKey renders a ground atom's interning key (identical byte
// encoding to Atom.Key) into dst.
func appendAtomKey(dst []byte, a Atom) []byte {
	dst = append(dst, a.Predicate...)
	dst = append(dst, '/')
	for _, t := range a.Args {
		dst = appendTermKey(dst, t)
		dst = append(dst, ';')
	}
	return dst
}

// internKeyed resolves a pre-rendered atom key, interning a fresh atom
// (with copied args) on first sight. Probing via map[string]X lookup on
// string(buf) never allocates.
func (g *grounder) internKeyed(pred string, buf []byte, args []Term) int32 {
	if id, ok := g.in.index[string(buf)]; ok {
		return id
	}
	a := Atom{Predicate: pred}
	if len(args) > 0 {
		a.Args = append([]Term(nil), args...)
	}
	id := int32(len(g.in.atoms))
	g.in.atoms = append(g.in.atoms, a)
	g.in.index[string(buf)] = id
	for int(id) >= len(g.inDomain) {
		g.inDomain = append(g.inDomain, false)
	}
	return id
}

// i32Arena hands out []int32 blocks from chunked backing arrays, so
// emitted instances stop paying two small allocations each. Blocks stay
// valid forever (chunks are never recycled while referenced); reset
// reuses the current chunk for the next extension.
type i32Arena struct {
	cur []int32
}

const (
	arenaChunkMin = 256
	arenaChunkMax = 8192
)

func (a *i32Arena) alloc(n int) []int32 {
	if n == 0 {
		return nil
	}
	if cap(a.cur)-len(a.cur) < n {
		// Chunks grow geometrically so small programs don't pay for a
		// large chunk, while big groundings settle into few allocations.
		sz := cap(a.cur) * 2
		if sz < arenaChunkMin {
			sz = arenaChunkMin
		}
		if sz > arenaChunkMax {
			sz = arenaChunkMax
		}
		if n > sz {
			sz = n
		}
		a.cur = make([]int32, 0, sz)
	}
	start := len(a.cur)
	a.cur = a.cur[:start+n]
	return a.cur[start : start+n : start+n]
}

// freeze detaches the current chunk: previously handed-out blocks are
// never reused, so instances recorded before the freeze (the frozen
// base of an incremental grounder) stay valid across resets.
func (a *i32Arena) freeze() { a.cur = nil }

// reset reuses the current chunk from the top (rollback of an
// incremental extension: every block handed out since the last freeze
// is dead).
func (a *i32Arena) reset() { a.cur = a.cur[:0] }

// ---------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------

// PlanInfo describes one compiled grounding plan for introspection
// (asolve -plan).
type PlanInfo struct {
	// Rule is the source rule.
	Rule string
	// Pos is the rule's source position ("" when built programmatically).
	Pos string
	// Delta names the delta-pinned literal of a semi-naive plan, or ""
	// for the full-join plan.
	Delta string
	// Join lists the scheduled positive literals in join order.
	Join []string
	// Steps renders every op in execution order.
	Steps []string
}

func describePlan(pr *plannedRule, plan *groundPlan, slot int) PlanInfo {
	info := PlanInfo{Rule: pr.rule.String()}
	if pr.rule.Pos.Valid() {
		info.Pos = pr.rule.Pos.String()
	}
	if slot >= 0 {
		info.Delta = pr.rule.Body[pr.posIdx[slot]].String()
	}
	for _, li := range plan.join {
		info.Join = append(info.Join, pr.rule.Body[li].String())
	}
	for i := range plan.ops {
		op := &plan.ops[i]
		switch op.kind {
		case opScan:
			s := "scan " + pr.rule.Body[op.lit].String()
			if len(op.probes) > 0 {
				var idx []string
				for _, p := range op.probes {
					idx = append(idx, fmt.Sprintf("arg%d", p.argPos))
				}
				s += " [probe " + strings.Join(idx, ",") + "]"
			}
			info.Steps = append(info.Steps, s)
		case opScanDelta:
			info.Steps = append(info.Steps, "delta-scan "+pr.rule.Body[op.lit].String())
		case opBind:
			l := pr.rule.Body[op.lit]
			expr := l.Rhs
			if v, ok := l.Lhs.(Variable); !ok || pr.reg(v.Name) != int(op.reg) {
				expr = l.Lhs
			}
			info.Steps = append(info.Steps, fmt.Sprintf("bind %s := %s", pr.vars[op.reg], expr))
		case opCmp:
			info.Steps = append(info.Steps, "test "+pr.rule.Body[op.lit].String())
		default:
			emit := ":-"
			if pr.headTpl != nil {
				h := pr.rule.Head.String()
				emit = h
			}
			info.Steps = append(info.Steps, "emit "+emit)
		}
	}
	return info
}

// String renders the plan info as an indented block.
func (pi PlanInfo) String() string {
	var sb strings.Builder
	sb.WriteString(pi.Rule)
	if pi.Pos != "" {
		sb.WriteString("  % at ")
		sb.WriteString(pi.Pos)
	}
	if pi.Delta != "" {
		sb.WriteString("  % delta: ")
		sb.WriteString(pi.Delta)
	}
	sb.WriteByte('\n')
	for _, s := range pi.Steps {
		sb.WriteString("    ")
		sb.WriteString(s)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// GroundWithPlans grounds the program and returns the grounding plans
// compiled along the way, in compilation order, for debugging join
// orders. Plans are per (rule, delta-position); only plans the fixpoint
// actually needed appear.
func GroundWithPlans(p *Program, opts GroundingOptions) (*GroundProgram, []PlanInfo, error) {
	normal, err := prepare(p, "")
	if err != nil {
		return nil, nil, err
	}
	g := newGrounder(opts)
	var trace []PlanInfo
	g.planTrace = &trace
	if err := g.groundRules(normal.Rules); err != nil {
		g.release()
		return nil, trace, err
	}
	out := g.finalize()
	g.flushPlanStats()
	g.release()
	return out, trace, nil
}
