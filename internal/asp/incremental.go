package asp

import (
	"fmt"
	"time"
)

// Incremental grounding: ground a base program once, then repeatedly
// extend it with small rule sets (hypothesis candidates in the learner)
// without re-grounding the base. Extend instantiates only the extension
// rules plus the base rules whose body predicates the extension can
// affect (computed from the predicate dependency graph), and rolls the
// grounder state back before each new extension.

// CompiledRules is an extension pre-compiled for repeated use with
// IncrementalGrounder.Extend: ranges expanded, choice rules compiled
// (namespaced by ns so separately compiled extensions cannot collide),
// and safety checked once.
type CompiledRules struct {
	facts     []Atom
	defs      []*plannedRule
	cons      []*plannedRule
	headPreds map[string]struct{}
}

// CompileExtension compiles a rule set for use with Extend. ns must be
// unique per extension compiled against the same grounder when the rules
// contain choice rules.
//
// The compiled form carries each rule's grounding plans, so an extension
// shared by many grounders (the learner extends one grounder per
// example with the same candidate) compiles its join orders once; the
// plan cache is safe for concurrent Extend calls on distinct grounders.
func CompileExtension(rules []Rule, ns string) (*CompiledRules, error) {
	normal, err := prepare(NewProgram(rules...), ns)
	if err != nil {
		return nil, err
	}
	out := &CompiledRules{headPreds: make(map[string]struct{})}
	for _, r := range normal.Rules {
		if r.IsFact() {
			out.facts = append(out.facts, *r.Head)
			out.headPreds[r.Head.Predicate] = struct{}{}
			continue
		}
		pr := newPlannedRule(r)
		if pr.isCon {
			out.cons = append(out.cons, pr)
		} else {
			out.defs = append(out.defs, pr)
			out.headPreds[r.Head.Predicate] = struct{}{}
		}
	}
	return out, nil
}

// ruleInfo pairs a compiled rule with its head predicate for
// dependency-directed re-instantiation.
type ruleInfo struct {
	pr       *plannedRule
	headName string
}

func newRuleInfo(pr *plannedRule) ruleInfo {
	info := ruleInfo{pr: pr}
	if pr.rule.Head != nil {
		info.headName = pr.rule.Head.Predicate
	}
	return info
}

// IncrementalGrounder grounds a base program once and supports repeated
// extension with compiled rule sets.
//
// The GroundProgram returned by Extend (and Base) shares the grounder's
// atom table: it is valid only until the next Extend or Reset call.
type IncrementalGrounder struct {
	g *grounder

	baseAtomLen int

	// baseStable holds finalized base rules whose form cannot change
	// under extension (every negative atom already in the base domain).
	baseStable []GroundRule
	baseSeen   map[string]struct{}
	// refin holds base instances with a negative atom outside the base
	// domain: an extension may derive that atom, so the finalized form
	// (negative literal kept vs dropped) is recomputed per Extend. This
	// includes inclusion constraints like ":- not decision(deny)." whose
	// meaning flips once a hypothesis derives the atom.
	refin []groundInstance

	baseDefs []ruleInfo
	baseCons []ruleInfo

	// cp is the lazily compiled clause form of the stable base rules;
	// cpJ journals the clause-form extension of the current Extend (set
	// when a returned program's clause form was actually built) so
	// Reset can roll it back instead of recompiling the base. cpJBuf is
	// the reused journal backing.
	cp     *CompiledProgram
	cpJ    *cpJournal
	cpJBuf cpJournal
}

// NewIncrementalGrounder grounds the base program and freezes the
// grounder state for subsequent Extend calls.
func NewIncrementalGrounder(base *Program, opts GroundingOptions) (*IncrementalGrounder, error) {
	normal, err := prepare(base, "")
	if err != nil {
		return nil, err
	}
	g := newGrounder(opts)
	baseFacts, baseDefs, baseCons := planRules(normal.Rules)
	if err := g.groundPlanned(baseFacts, baseDefs, baseCons); err != nil {
		return nil, err
	}
	// The base instances alias the arena; freeze it so extension rounds
	// (rolled back by Reset) cannot reuse their storage.
	g.arena.freeze()
	g.flushPlanStats()

	ig := &IncrementalGrounder{g: g}
	ig.baseSeen = make(map[string]struct{}, len(g.pending))
	for _, inst := range g.pending {
		volatile := false
		for _, gid := range inst.neg {
			if !g.inDomain[gid] {
				volatile = true
				break
			}
		}
		if volatile {
			ig.refin = append(ig.refin, inst)
			continue
		}
		gr := GroundRule{Head: inst.head, PosBody: inst.pos, NegBody: inst.neg}
		key := g.keySc.ruleKey(gr)
		if _, dup := ig.baseSeen[string(key)]; dup {
			continue
		}
		ig.baseSeen[string(key)] = struct{}{}
		ig.baseStable = append(ig.baseStable, gr)
	}
	g.pending = nil
	ig.baseAtomLen = g.in.Len()

	for _, pr := range baseDefs {
		ig.baseDefs = append(ig.baseDefs, newRuleInfo(pr))
	}
	for _, pr := range baseCons {
		ig.baseCons = append(ig.baseCons, newRuleInfo(pr))
	}
	return ig, nil
}

// Base returns the ground base program (equivalent to Ground of the base,
// modulo atom-id numbering). Any pending extension is rolled back.
func (ig *IncrementalGrounder) Base() *GroundProgram {
	ig.Reset()
	return ig.finalizeExtended()
}

// Reset rolls the grounder back to the frozen base state, undoing the
// effects of the last Extend. Extend calls it implicitly.
func (ig *IncrementalGrounder) Reset() {
	if ig.cpJ != nil {
		ig.cp.rollback(ig.cpJ)
		ig.cpJ = nil
	}
	g := ig.g
	if !g.journal {
		return
	}
	statIncrRollbacks.Inc()
	for i := len(g.addedDomain) - 1; i >= 0; i-- {
		id := g.addedDomain[i]
		a := g.in.atoms[id]
		g.rel[atomPredKey(a)].popLast(a)
		g.inDomain[id] = false
		g.domainN--
	}
	g.addedDomain = g.addedDomain[:0]
	for _, pk := range g.newRels {
		delete(g.rel, pk)
	}
	g.newRels = g.newRels[:0]
	g.in.truncate(ig.baseAtomLen)
	if len(g.inDomain) > ig.baseAtomLen {
		g.inDomain = g.inDomain[:ig.baseAtomLen]
	}
	g.pending = g.pending[:0]
	g.delta = nil
	g.journal = false
	// Every arena block handed out since the base freeze belonged to the
	// rolled-back extension; reuse its storage.
	g.arena.reset()
}

// Extend grounds base ∪ extensions, reusing the frozen base grounding.
// Only the extension rules and the base rules reachable from the
// extensions' head predicates in the dependency graph are instantiated.
// The returned program shares the grounder's atom table and is valid only
// until the next Extend or Reset.
func (ig *IncrementalGrounder) Extend(exts ...*CompiledRules) (*GroundProgram, error) {
	t0 := time.Now()
	ig.Reset()
	defer func() {
		statIncrExtends.Inc()
		statIncrExtendDur.ObserveSince(t0)
		statIncrAtomsAdded.Add(int64(ig.g.in.Len() - ig.baseAtomLen))
		ig.g.flushPlanStats()
	}()
	g := ig.g
	g.journal = true
	g.delta = make(map[predKey][]int32)

	reach := make(map[string]struct{})
	var extDefs, extCons []*plannedRule
	for _, e := range exts {
		extDefs = append(extDefs, e.defs...)
		extCons = append(extCons, e.cons...)
		for p := range e.headPreds {
			reach[p] = struct{}{}
		}
	}

	// Close reach over the base dependency graph and collect the base
	// definite rules the extension can feed.
	changed := true
	for changed {
		changed = false
		for _, ri := range ig.baseDefs {
			if _, ok := reach[ri.headName]; ok {
				continue
			}
			for _, pk := range ri.pr.posPred {
				if _, hit := reach[pk.name]; hit {
					reach[ri.headName] = struct{}{}
					changed = true
					break
				}
			}
		}
	}
	var loop []ruleInfo
	for _, pr := range extDefs {
		loop = append(loop, newRuleInfo(pr))
	}
	for _, ri := range ig.baseDefs {
		for _, pk := range ri.pr.posPred {
			if _, hit := reach[pk.name]; hit {
				loop = append(loop, ri)
				break
			}
		}
	}

	// Round 0: emit extension facts, then fully instantiate the extension
	// rules against the base relations (their all-base-atom instances are
	// new).
	for _, e := range exts {
		for _, a := range e.facts {
			if err := g.emitFact(a); err != nil {
				return nil, err
			}
		}
	}
	for _, pr := range extDefs {
		if err := g.instantiate(pr, -1, nil); err != nil {
			return nil, err
		}
	}
	// Semi-naive rounds over extension plus affected base rules: only
	// instances touching a new atom are emitted.
	for len(g.delta) > 0 {
		if g.opts.MaxAtoms > 0 && g.domainN > g.opts.MaxAtoms {
			return nil, fmt.Errorf("grounding exceeded %d atoms", g.opts.MaxAtoms)
		}
		prevDelta := g.delta
		g.delta = make(map[predKey][]int32)
		for _, ri := range loop {
			for k := range ri.pr.posIdx {
				if err := g.instantiate(ri.pr, k, prevDelta); err != nil {
					return nil, err
				}
			}
		}
	}

	// Base constraints gain instances only at positions whose predicate
	// gained atoms; re-instantiate with the new atoms as the delta (the
	// empty-delta skip in instantiate drops unaffected positions).
	if len(g.addedDomain) > 0 && len(ig.baseCons) > 0 {
		newByPred := make(map[predKey][]int32)
		for _, id := range g.addedDomain {
			pk := atomPredKey(g.in.atoms[id])
			newByPred[pk] = append(newByPred[pk], id)
		}
		for _, ci := range ig.baseCons {
			for k := range ci.pr.posIdx {
				if err := g.instantiate(ci.pr, k, newByPred); err != nil {
					return nil, err
				}
			}
		}
	}
	// Extension constraints see the full relations.
	for _, c := range extCons {
		if err := g.instantiate(c, -1, nil); err != nil {
			return nil, err
		}
	}
	return ig.finalizeExtended(), nil
}

// finalizeExtended builds a ground program over the global atom table:
// frozen base rules, re-finalized volatile base instances, and the
// pending extension instances.
func (ig *IncrementalGrounder) finalizeExtended() *GroundProgram {
	g := ig.g
	out := &GroundProgram{
		Atoms: g.in.atoms,
		index: g.in.index,
	}
	rules := ig.baseStable[:len(ig.baseStable):len(ig.baseStable)]
	local := make(map[string]struct{}, len(ig.refin)+len(g.pending))
	addInst := func(inst groundInstance) {
		gr := GroundRule{Head: inst.head, PosBody: inst.pos}
		for _, gid := range inst.neg {
			if g.inDomain[gid] {
				gr.NegBody = append(gr.NegBody, gid)
			}
		}
		key := g.keySc.ruleKey(gr)
		if _, dup := ig.baseSeen[string(key)]; dup {
			return
		}
		if _, dup := local[string(key)]; dup {
			return
		}
		local[string(key)] = struct{}{}
		rules = append(rules, gr)
	}
	for _, inst := range ig.refin {
		addInst(inst)
	}
	for _, inst := range g.pending {
		addInst(inst)
	}
	out.Rules = rules
	out.cpFn = func() *CompiledProgram { return ig.clauseFormFor(out) }
	return out
}

// clauseFormFor extends the base clause form with out's extension rules
// — everything beyond the shared baseStable prefix (re-finalized
// volatile instances and the pending extension) — under a journal that
// the next Reset rolls back, so the base clauses are compiled exactly
// once per grounder. Invoked lazily, the first time the returned
// program is solved with the CDNL engine.
func (ig *IncrementalGrounder) clauseFormFor(out *GroundProgram) *CompiledProgram {
	if ig.cp == nil {
		base := &GroundProgram{Atoms: ig.g.in.atoms[:ig.baseAtomLen], Rules: ig.baseStable}
		ig.cp = compileGround(base)
	}
	if ig.cpJ != nil {
		ig.cp.rollback(ig.cpJ)
		ig.cpJ = nil
	}
	ig.cpJ = ig.cp.extend(out, out.Rules[len(ig.baseStable):], &ig.cpJBuf)
	return ig.cp
}
