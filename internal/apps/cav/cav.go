// Package cav implements the connected-and-autonomous-vehicles
// application of the paper (Section IV.A, after Cunnington et al.): a
// CAV learns a generative policy model that states whether a request to
// execute a driving task should be accepted or rejected, based on the
// environmental conditions and the SAE level of autonomy (LOA) of the
// vehicle and region.
//
// The package provides the scenario generator, the symbolic learning
// task, the feature encoding for the shallow-ML baselines, and the
// ASG-based GPM — everything needed to reproduce the paper's claim that
// the symbolic learner reaches higher accuracy from fewer examples than
// shallow ML (experiment E7).
package cav

import (
	"fmt"
	"strconv"

	"agenp/internal/asg"
	"agenp/internal/asp"
	"agenp/internal/ilasp"
	"agenp/internal/mlbase"
	"agenp/internal/workload"
)

// Domain constants.
var (
	// Weathers lists environmental conditions; all but "clear" are
	// adverse.
	Weathers = []string{"clear", "rain", "fog", "snow"}
	// Tasks lists driving tasks; RiskyTasks are unsafe in adverse
	// weather.
	Tasks = []string{"overtake", "park", "lane_change", "navigate_junction"}
	// RiskyTasks is the subset of Tasks denied in adverse weather.
	RiskyTasks = map[string]bool{"overtake": true, "navigate_junction": true}
	// LOALevels are the SAE-style autonomy levels of vehicles (1..5).
	LOALevels = []int{1, 2, 3, 4, 5}
	// RegionMinima are the minimum LOA a region may demand.
	RegionMinima = []int{1, 2, 3, 4}
)

// Scenario is one driving-task request in a context.
type Scenario struct {
	Weather   string
	Task      string
	LOA       int // vehicle level of autonomy
	RegionMin int // transient minimum LOA enforced in the region
	// Accept is the ground-truth label.
	Accept bool
}

// groundTruth encodes the target policy:
//
//	deny :- risky task in adverse weather
//	deny :- vehicle LOA below the region minimum
//	accept otherwise
func groundTruth(s Scenario) bool {
	if s.Weather != "clear" && RiskyTasks[s.Task] {
		return false
	}
	if s.LOA < s.RegionMin {
		return false
	}
	return true
}

// Generate samples n scenarios deterministically from the seed.
func Generate(seed uint64, n int) []Scenario {
	rng := workload.NewRNG(seed)
	out := make([]Scenario, n)
	for i := range out {
		s := Scenario{
			Weather:   workload.Pick(rng, Weathers),
			Task:      workload.Pick(rng, Tasks),
			LOA:       workload.Pick(rng, LOALevels),
			RegionMin: workload.Pick(rng, RegionMinima),
		}
		s.Accept = groundTruth(s)
		out[i] = s
	}
	return out
}

// Context renders the scenario — environment plus requested task — as
// ASP facts, the form the flat decision learner consumes.
func (s Scenario) Context() *asp.Program {
	p := s.EnvContext()
	p.Add(asp.NewFact(asp.NewAtom("task", asp.Constant{Name: s.Task})))
	return p
}

// EnvContext renders only the environment facts. This is the context for
// ASG membership and generation, where the task is part of the policy
// string rather than the context (the grammar's task productions emit
// their own task/1 atoms at the parse-tree nodes).
func (s Scenario) EnvContext() *asp.Program {
	return asp.NewProgram(
		asp.NewFact(asp.NewAtom("weather", asp.Constant{Name: s.Weather})),
		asp.NewFact(asp.NewAtom("loa", asp.Integer{Value: s.LOA})),
		asp.NewFact(asp.NewAtom("region_min", asp.Integer{Value: s.RegionMin})),
	)
}

// Features encodes the scenario for the shallow-ML baselines. All
// attributes are categorical, matching what a table-based learner sees.
func (s Scenario) Features() map[string]string {
	return map[string]string{
		"weather":    s.Weather,
		"task":       s.Task,
		"loa":        strconv.Itoa(s.LOA),
		"region_min": strconv.Itoa(s.RegionMin),
	}
}

// Label renders the ground-truth class.
func (s Scenario) Label() string {
	if s.Accept {
		return "accept"
	}
	return "reject"
}

// Instances converts scenarios for package mlbase.
func Instances(ss []Scenario) []mlbase.Instance {
	out := make([]mlbase.Instance, len(ss))
	for i, s := range ss {
		out[i] = mlbase.Instance{Features: s.Features(), Label: s.Label()}
	}
	return out
}

// denyAtom is the decision atom the symbolic learner targets: the model
// denies a request when a learned deny rule fires, and accepts
// otherwise (deny-overrides with default accept).
func denyAtom() asp.Atom {
	return asp.NewAtom("decision", asp.Constant{Name: "deny"})
}

// Background supplies the adverse-weather ontology — the kind of
// contextual knowledge Section IV.C argues enables safe generalization.
func Background() *asp.Program {
	p, err := asp.Parse(`
		adverse(rain). adverse(fog). adverse(snow).
		risky(overtake). risky(navigate_junction).
	`)
	if err != nil {
		panic(fmt.Sprintf("cav: background: %v", err))
	}
	return p
}

// Bias is the learner's language bias over the CAV context vocabulary.
func Bias() ilasp.Bias {
	weatherTerms := make([]asp.Term, len(Weathers))
	for i, w := range Weathers {
		weatherTerms[i] = asp.Constant{Name: w}
	}
	taskTerms := make([]asp.Term, len(Tasks))
	for i, t := range Tasks {
		taskTerms[i] = asp.Constant{Name: t}
	}
	return ilasp.Bias{
		Head: []ilasp.ModeAtom{ilasp.M("decision", ilasp.Const("effect"))},
		Body: []ilasp.ModeAtom{
			ilasp.M("weather", ilasp.Const("w")),
			ilasp.M("task", ilasp.Const("t")),
			ilasp.M("adverse", ilasp.Var("w")),
			ilasp.M("weather", ilasp.Var("w")),
			ilasp.M("loa", ilasp.Var("num")),
			ilasp.M("region_min", ilasp.Var("num")),
		},
		Constants: map[string][]asp.Term{
			"effect": {asp.Constant{Name: "deny"}},
			"w":      weatherTerms,
			"t":      taskTerms,
		},
		Comparisons: []ilasp.CmpSpec{{
			Type: "num",
			Ops:  []asp.CmpOp{asp.CmpLt},
			// The learner may compare LOA variables with each other via
			// the variable-pair comparisons below; absolute thresholds
			// are also available.
			Values: []asp.Term{asp.Integer{Value: 2}, asp.Integer{Value: 3}, asp.Integer{Value: 4}},
		}},
		VarComparisons: true,
		MaxVars:        2,
		MaxBody:        3,
		RequireBody:    true,
	}
}

// Learned is a trained symbolic CAV policy.
type Learned struct {
	Result *ilasp.Result
}

// LearningExamples converts scenarios to learner examples: rejected
// scenarios require the deny decision, accepted ones exclude it.
func LearningExamples(ss []Scenario, weight int) []ilasp.Example {
	deny := denyAtom()
	out := make([]ilasp.Example, len(ss))
	for i, s := range ss {
		ex := ilasp.Example{
			ID:       fmt.Sprintf("s%d", i+1),
			Positive: true,
			Context:  s.Context(),
			Weight:   weight,
		}
		if s.Accept {
			ex.Exclusions = []asp.Atom{deny}
		} else {
			ex.Inclusions = []asp.Atom{deny}
		}
		out[i] = ex
	}
	return out
}

// Learn trains the symbolic policy on scenarios.
func Learn(train []Scenario, opts ilasp.LearnOptions) (*Learned, error) {
	task := &ilasp.Task{
		Background: Background(),
		Bias:       Bias(),
		Examples:   LearningExamples(train, 0),
	}
	if opts.MaxRules == 0 {
		opts.MaxRules = 3
	}
	res, err := task.LearnIndependent(opts)
	if err != nil {
		return nil, fmt.Errorf("cav: learning: %w", err)
	}
	return &Learned{Result: res}, nil
}

// Predict applies the learned deny rules to a scenario.
func (l *Learned) Predict(s Scenario) (accept bool, err error) {
	prog := asp.NewProgram()
	prog.Extend(Background())
	prog.Extend(s.Context())
	models, err := asp.Solve(prog, asp.SolveOptions{MaxModels: 1})
	if err != nil || len(models) == 0 {
		return false, fmt.Errorf("cav: context unsolvable: %w", err)
	}
	deny := denyAtom()
	for _, r := range l.Result.Hypothesis {
		heads, err := asp.EvalRule(r, models[0])
		if err != nil {
			return false, err
		}
		for _, h := range heads {
			if h.Key() == deny.Key() {
				return false, nil
			}
		}
	}
	return true, nil
}

// Accuracy scores the learned policy on test scenarios.
func (l *Learned) Accuracy(test []Scenario) (float64, error) {
	if len(test) == 0 {
		return 0, nil
	}
	correct := 0
	for _, s := range test {
		got, err := l.Predict(s)
		if err != nil {
			return 0, err
		}
		if got == s.Accept {
			correct++
		}
	}
	return float64(correct) / float64(len(test)), nil
}

// GrammarSource is the CAV policy-language ASG used with the AGENP
// framework: the GPM generates "accept <task>" / "reject <task>"
// policies, and the annotations make "accept" invalid exactly when the
// learned deny conditions hold in the context.
const GrammarSource = `
policy -> "accept" task {
    :- task(T)@2, risky(T), adverse(W), weather(W).
    :- loa(V), region_min(M), V < M.
}
policy -> "reject" task
task -> "overtake" { task(overtake). }
task -> "park" { task(park). }
task -> "lane_change" { task(lane_change). }
task -> "navigate_junction" { task(navigate_junction). }
`

// Grammar parses the CAV ASG. Note: GrammarSource's first production
// encodes the *ground-truth* semantic conditions; LearnableGrammarSource
// below is the blank initial grammar the framework starts from.
func Grammar() (*asg.Grammar, error) {
	return asg.ParseASG(GrammarSource)
}

// LearnableGrammarSource is the initial GPM: syntax only, semantics to
// be learned.
const LearnableGrammarSource = `
policy -> "accept" task
policy -> "reject" task
task -> "overtake" { task(overtake). }
task -> "park" { task(park). }
task -> "lane_change" { task(lane_change). }
task -> "navigate_junction" { task(navigate_junction). }
`

// HypothesisSpace builds the ASG hypothesis space for the AGENP
// adaptation loop: deny-style constraints attachable to the accept
// production.
func HypothesisSpace() ([]asg.HypothesisRule, error) {
	g, err := asg.ParseASG(LearnableGrammarSource)
	if err != nil {
		return nil, err
	}
	var rules []asg.HypothesisRule
	add := func(src string) error {
		h, err := parseHyp(src)
		if err != nil {
			return err
		}
		rules = append(rules, h)
		return nil
	}
	srcs := []string{
		":- task(T)@2, risky(T), adverse(W), weather(W).",
		":- loa(V), region_min(M), V < M.",
		":- weather(rain).",
		":- weather(fog).",
		":- weather(snow).",
		":- task(overtake)@2.",
		":- task(navigate_junction)@2.",
	}
	for _, s := range srcs {
		if err := add(s); err != nil {
			return nil, err
		}
	}
	_ = g
	return rules, nil
}

func parseHyp(src string) (asg.HypothesisRule, error) {
	prog, err := asp.ParseAnnotated(src, asg.AnnotationHook)
	if err != nil {
		return asg.HypothesisRule{}, err
	}
	if len(prog.Rules) != 1 {
		return asg.HypothesisRule{}, fmt.Errorf("cav: expected one rule in %q", src)
	}
	return asg.HypothesisRule{Rule: prog.Rules[0], ProdID: 0}, nil
}

// ground-truth constraint on risky tasks: a scenario's risky task in
// adverse weather must be denied. Exposed for tests and the experiment
// harness.
const GroundTruthDenyRisky = ":- task(T)@2, risky(T), adverse(W), weather(W)."
