package cav

import (
	"testing"

	"agenp/internal/asg"
	"agenp/internal/ilasp"
	"agenp/internal/mlbase"
	"agenp/internal/workload"
)

func TestGroundTruth(t *testing.T) {
	tests := []struct {
		name string
		s    Scenario
		want bool
	}{
		{name: "clear overtake ok", s: Scenario{Weather: "clear", Task: "overtake", LOA: 5, RegionMin: 1}, want: true},
		{name: "rain overtake denied", s: Scenario{Weather: "rain", Task: "overtake", LOA: 5, RegionMin: 1}, want: false},
		{name: "rain park ok", s: Scenario{Weather: "rain", Task: "park", LOA: 5, RegionMin: 1}, want: true},
		{name: "low loa denied", s: Scenario{Weather: "clear", Task: "park", LOA: 1, RegionMin: 3}, want: false},
		{name: "snow junction denied", s: Scenario{Weather: "snow", Task: "navigate_junction", LOA: 5, RegionMin: 1}, want: false},
		{name: "fog lane change ok", s: Scenario{Weather: "fog", Task: "lane_change", LOA: 3, RegionMin: 3}, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := groundTruth(tt.s); got != tt.want {
				t.Errorf("groundTruth = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestGenerateDeterministicAndLabelled(t *testing.T) {
	a := Generate(3, 40)
	b := Generate(3, 40)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generation not deterministic")
		}
		if a[i].Accept != groundTruth(a[i]) {
			t.Fatal("mislabelled scenario")
		}
	}
	// Both classes present.
	accepts := 0
	for _, s := range a {
		if s.Accept {
			accepts++
		}
	}
	if accepts == 0 || accepts == len(a) {
		t.Errorf("degenerate label distribution: %d/%d", accepts, len(a))
	}
}

func TestContextAndFeatures(t *testing.T) {
	s := Scenario{Weather: "rain", Task: "overtake", LOA: 2, RegionMin: 3}
	ctx := s.Context().String()
	for _, want := range []string{"weather(rain).", "task(overtake).", "loa(2).", "region_min(3)."} {
		if !contains(ctx, want) {
			t.Errorf("context missing %q:\n%s", want, ctx)
		}
	}
	f := s.Features()
	if f["weather"] != "rain" || f["loa"] != "2" {
		t.Errorf("features = %v", f)
	}
	if s.Label() != "reject" {
		t.Errorf("label = %q", s.Label())
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && index(s, sub) >= 0
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestLearnRecoversPolicy(t *testing.T) {
	scenarios := Generate(7, 260)
	train, test := workload.Split(scenarios, 60)
	learned, err := Learn(train, ilasp.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := learned.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.97 {
		t.Errorf("accuracy = %.3f, want >= 0.97 from 60 examples\nhypothesis:\n%s", acc, learned.Result)
	}
	if len(learned.Result.Hypothesis) == 0 || len(learned.Result.Hypothesis) > 3 {
		t.Errorf("hypothesis size = %d", len(learned.Result.Hypothesis))
	}
}

// TestSymbolicSampleEfficiency is the heart of E7: with a small training
// set, the symbolic learner must beat the decision tree, mirroring the
// paper's claim ("fewer examples are required to achieve a greater
// accuracy").
func TestSymbolicSampleEfficiency(t *testing.T) {
	scenarios := Generate(11, 300)
	train, test := workload.Split(scenarios, 25)
	learned, err := Learn(train, ilasp.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	symAcc, err := learned.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	tree := mlbase.TrainID3(Instances(train), mlbase.TreeOptions{})
	treeAcc := mlbase.Accuracy(tree, Instances(test))
	if symAcc <= treeAcc {
		t.Errorf("symbolic %.3f should beat tree %.3f at 25 examples", symAcc, treeAcc)
	}
	if symAcc < 0.9 {
		t.Errorf("symbolic accuracy %.3f unexpectedly low", symAcc)
	}
}

func TestGrammarGroundTruthMembership(t *testing.T) {
	g, err := Grammar()
	if err != nil {
		t.Fatal(err)
	}
	check := func(s Scenario, policyTokens []string, want bool) {
		t.Helper()
		full := s.EnvContext()
		full.Extend(Background())
		ok, err := g.WithContext(full).Accepts(policyTokens, asg.AcceptOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if ok != want {
			t.Errorf("Accepts(%v | %+v) = %v, want %v", policyTokens, s, ok, want)
		}
	}
	rainy := Scenario{Weather: "rain", Task: "overtake", LOA: 5, RegionMin: 1}
	check(rainy, []string{"accept", "overtake"}, false)
	check(rainy, []string{"reject", "overtake"}, true)
	check(rainy, []string{"accept", "park"}, true)
	lowLOA := Scenario{Weather: "clear", Task: "park", LOA: 1, RegionMin: 4}
	check(lowLOA, []string{"accept", "park"}, false)
}

func TestHypothesisSpace(t *testing.T) {
	space, err := HypothesisSpace()
	if err != nil {
		t.Fatal(err)
	}
	if len(space) != 7 {
		t.Fatalf("space size = %d", len(space))
	}
	found := false
	for _, h := range space {
		if asg.DisplayRule(h.Rule) == GroundTruthDenyRisky {
			found = true
		}
	}
	if !found {
		t.Error("ground-truth constraint missing from hypothesis space")
	}
}

func TestBiasContainsGroundTruthRules(t *testing.T) {
	space, err := Bias().Space()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		// LOA rule: vehicle LOA below region minimum.
		"decision(deny) :- loa(V1), region_min(V2), V1 < V2.": false,
		// Risky-task rules via the adverse ontology.
		"decision(deny) :- adverse(V1), task(overtake), weather(V1).": false,
	}
	for _, c := range space {
		if _, ok := want[c.Rule.String()]; ok {
			want[c.Rule.String()] = true
		}
	}
	for rule, found := range want {
		if !found {
			t.Errorf("bias space missing %q (size %d)", rule, len(space))
		}
	}
}
