// Package resupply implements the logistical-resupply application of
// the paper (Section IV.B, from the DAIS-ITA scenario): a coalition
// convoy must choose route and timing under threat, weather and escort
// conditions. Policies are learned from mission outcomes; as missions
// accumulate, "the learning tasks become easier and more accurate"
// (experiment E12 plots accuracy against completed missions).
package resupply

import (
	"fmt"
	"strconv"

	"agenp/internal/asg"
	"agenp/internal/asp"
	"agenp/internal/ilasp"
	"agenp/internal/mlbase"
	"agenp/internal/workload"
)

// Domain constants.
var (
	// Routes are the route options of the scenario.
	Routes = []string{"north", "south", "river"}
	// Times are mission windows.
	Times = []string{"day", "night"}
	// Threats are route threat assessments.
	Threats = []string{"low", "medium", "high"}
	// EscortLevels are escort strengths (1..4).
	EscortLevels = []int{1, 2, 3, 4}
)

// Mission is one resupply mission plan with its outcome label.
type Mission struct {
	Route  string
	Time   string
	Threat string
	Escort int
	// Approve is the ground-truth label: whether the plan is acceptable
	// under the coalition's risk appetite.
	Approve bool
}

// groundTruth encodes the target policy:
//
//	deny :- threat is high
//	deny :- river route at night
//	deny :- medium threat with escort below 2
//	approve otherwise
func groundTruth(m Mission) bool {
	if m.Threat == "high" {
		return false
	}
	if m.Route == "river" && m.Time == "night" {
		return false
	}
	if m.Threat == "medium" && m.Escort < 2 {
		return false
	}
	return true
}

// Generate samples n missions deterministically.
func Generate(seed uint64, n int) []Mission {
	rng := workload.NewRNG(seed)
	out := make([]Mission, n)
	for i := range out {
		m := Mission{
			Route:  workload.Pick(rng, Routes),
			Time:   workload.Pick(rng, Times),
			Threat: workload.Pick(rng, Threats),
			Escort: workload.Pick(rng, EscortLevels),
		}
		m.Approve = groundTruth(m)
		out[i] = m
	}
	return out
}

// EnvContext renders only the environment facts (threat, escort) — the
// context for ASG membership/generation, where route and timing are part
// of the plan string.
func (m Mission) EnvContext() *asp.Program {
	return asp.NewProgram(
		asp.NewFact(asp.NewAtom("threat", asp.Constant{Name: m.Threat})),
		asp.NewFact(asp.NewAtom("escort", asp.Integer{Value: m.Escort})),
	)
}

// Context renders the mission as ASP facts.
func (m Mission) Context() *asp.Program {
	return asp.NewProgram(
		asp.NewFact(asp.NewAtom("route", asp.Constant{Name: m.Route})),
		asp.NewFact(asp.NewAtom("time", asp.Constant{Name: m.Time})),
		asp.NewFact(asp.NewAtom("threat", asp.Constant{Name: m.Threat})),
		asp.NewFact(asp.NewAtom("escort", asp.Integer{Value: m.Escort})),
	)
}

// Features encodes the mission for the ML baselines.
func (m Mission) Features() map[string]string {
	return map[string]string{
		"route":  m.Route,
		"time":   m.Time,
		"threat": m.Threat,
		"escort": strconv.Itoa(m.Escort),
	}
}

// Label renders the class.
func (m Mission) Label() string {
	if m.Approve {
		return "approve"
	}
	return "deny"
}

// Instances converts missions for package mlbase.
func Instances(ms []Mission) []mlbase.Instance {
	out := make([]mlbase.Instance, len(ms))
	for i, m := range ms {
		out[i] = mlbase.Instance{Features: m.Features(), Label: m.Label()}
	}
	return out
}

func denyAtom() asp.Atom {
	return asp.NewAtom("decision", asp.Constant{Name: "deny"})
}

// Bias is the learner's language bias for mission policies.
func Bias() ilasp.Bias {
	routeTerms := make([]asp.Term, len(Routes))
	for i, r := range Routes {
		routeTerms[i] = asp.Constant{Name: r}
	}
	timeTerms := make([]asp.Term, len(Times))
	for i, t := range Times {
		timeTerms[i] = asp.Constant{Name: t}
	}
	threatTerms := make([]asp.Term, len(Threats))
	for i, t := range Threats {
		threatTerms[i] = asp.Constant{Name: t}
	}
	return ilasp.Bias{
		Head: []ilasp.ModeAtom{ilasp.M("decision", ilasp.Const("effect"))},
		Body: []ilasp.ModeAtom{
			ilasp.M("route", ilasp.Const("route")),
			ilasp.M("time", ilasp.Const("time")),
			ilasp.M("threat", ilasp.Const("threat")),
			ilasp.M("escort", ilasp.Var("num")),
		},
		Constants: map[string][]asp.Term{
			"effect": {asp.Constant{Name: "deny"}},
			"route":  routeTerms,
			"time":   timeTerms,
			"threat": threatTerms,
		},
		Comparisons: []ilasp.CmpSpec{{
			Type:   "num",
			Ops:    []asp.CmpOp{asp.CmpLt},
			Values: []asp.Term{asp.Integer{Value: 2}, asp.Integer{Value: 3}},
		}},
		MaxVars:     1,
		MaxBody:     3,
		RequireBody: true,
	}
}

// Learned is a trained mission policy.
type Learned struct {
	Result *ilasp.Result
}

// LearningExamples converts missions into learner examples.
func LearningExamples(ms []Mission, weight int) []ilasp.Example {
	deny := denyAtom()
	out := make([]ilasp.Example, len(ms))
	for i, m := range ms {
		ex := ilasp.Example{
			ID:       fmt.Sprintf("m%d", i+1),
			Positive: true,
			Context:  m.Context(),
			Weight:   weight,
		}
		if m.Approve {
			ex.Exclusions = []asp.Atom{deny}
		} else {
			ex.Inclusions = []asp.Atom{deny}
		}
		out[i] = ex
	}
	return out
}

// Learn trains the symbolic mission policy.
func Learn(train []Mission, opts ilasp.LearnOptions) (*Learned, error) {
	task := &ilasp.Task{
		Bias:     Bias(),
		Examples: LearningExamples(train, 0),
	}
	if opts.MaxRules == 0 {
		opts.MaxRules = 3
	}
	res, err := task.LearnIndependent(opts)
	if err != nil {
		return nil, fmt.Errorf("resupply: learning: %w", err)
	}
	return &Learned{Result: res}, nil
}

// Predict applies the learned deny rules to a mission.
func (l *Learned) Predict(m Mission) (approve bool, err error) {
	models, err := asp.Solve(m.Context(), asp.SolveOptions{MaxModels: 1})
	if err != nil || len(models) == 0 {
		return false, fmt.Errorf("resupply: context unsolvable: %w", err)
	}
	deny := denyAtom()
	for _, r := range l.Result.Hypothesis {
		heads, err := asp.EvalRule(r, models[0])
		if err != nil {
			return false, err
		}
		for _, h := range heads {
			if h.Key() == deny.Key() {
				return false, nil
			}
		}
	}
	return true, nil
}

// Accuracy scores the learned policy.
func (l *Learned) Accuracy(test []Mission) (float64, error) {
	if len(test) == 0 {
		return 0, nil
	}
	correct := 0
	for _, m := range test {
		got, err := l.Predict(m)
		if err != nil {
			return 0, err
		}
		if got == m.Approve {
			correct++
		}
	}
	return float64(correct) / float64(len(test)), nil
}

// GrammarSource is the resupply policy language for the AGENP framework:
// convoy plans "go <route> <time>" vetted against the context.
const GrammarSource = `
plan -> "go" route timing {
    :- threat(high).
    :- route(river)@2, time(night)@3.
}
route -> "north" { route(north). }
route -> "south" { route(south). }
route -> "river" { route(river). }
timing -> "day" { time(day). }
timing -> "night" { time(night). }
`

// Grammar parses the resupply ASG.
func Grammar() (*asg.Grammar, error) {
	return asg.ParseASG(GrammarSource)
}
