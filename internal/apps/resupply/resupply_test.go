package resupply

import (
	"strings"
	"testing"

	"agenp/internal/asg"
	"agenp/internal/ilasp"
	"agenp/internal/mlbase"
	"agenp/internal/workload"
)

func TestGroundTruth(t *testing.T) {
	tests := []struct {
		name string
		m    Mission
		want bool
	}{
		{name: "calm day north", m: Mission{Route: "north", Time: "day", Threat: "low", Escort: 1}, want: true},
		{name: "high threat", m: Mission{Route: "north", Time: "day", Threat: "high", Escort: 4}, want: false},
		{name: "river at night", m: Mission{Route: "river", Time: "night", Threat: "low", Escort: 4}, want: false},
		{name: "river by day", m: Mission{Route: "river", Time: "day", Threat: "low", Escort: 1}, want: true},
		{name: "medium threat weak escort", m: Mission{Route: "south", Time: "day", Threat: "medium", Escort: 1}, want: false},
		{name: "medium threat strong escort", m: Mission{Route: "south", Time: "day", Threat: "medium", Escort: 3}, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := groundTruth(tt.m); got != tt.want {
				t.Errorf("groundTruth = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestGenerateLabelled(t *testing.T) {
	ms := Generate(5, 60)
	approvals := 0
	for _, m := range ms {
		if m.Approve != groundTruth(m) {
			t.Fatal("mislabelled mission")
		}
		if m.Approve {
			approvals++
		}
	}
	if approvals == 0 || approvals == len(ms) {
		t.Errorf("degenerate labels: %d/%d", approvals, len(ms))
	}
}

// TestLearningImprovesWithMissions is E12's shape: accuracy grows as
// missions accumulate ("as time progresses and missions take place the
// learning tasks should become easier and more accurate").
func TestLearningImprovesWithMissions(t *testing.T) {
	all := Generate(21, 400)
	test := all[300:]
	small, err := Learn(all[:6], ilasp.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Learn(all[:80], ilasp.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	accSmall, err := small.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	accLarge, err := large.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if accLarge < accSmall {
		t.Errorf("accuracy did not improve: %d missions %.3f -> %d missions %.3f", 6, accSmall, 80, accLarge)
	}
	if accLarge < 0.97 {
		t.Errorf("80-mission accuracy = %.3f, want >= 0.97\n%s", accLarge, large.Result)
	}
}

func TestLearnedBeatsTreeOnFewMissions(t *testing.T) {
	all := Generate(9, 300)
	train, test := workload.Split(all, 20)
	learned, err := Learn(train, ilasp.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	symAcc, err := learned.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	tree := mlbase.TrainID3(Instances(train), mlbase.TreeOptions{})
	treeAcc := mlbase.Accuracy(tree, Instances(test))
	if symAcc < treeAcc {
		t.Errorf("symbolic %.3f below tree %.3f at 20 missions", symAcc, treeAcc)
	}
}

func TestGrammarMembership(t *testing.T) {
	g, err := Grammar()
	if err != nil {
		t.Fatal(err)
	}
	calm := Mission{Threat: "low", Escort: 3}
	hot := Mission{Threat: "high", Escort: 3}
	tests := []struct {
		name string
		m    Mission
		plan string
		want bool
	}{
		{name: "calm north day", m: calm, plan: "go north day", want: true},
		{name: "calm river night", m: calm, plan: "go river night", want: false},
		{name: "calm river day", m: calm, plan: "go river day", want: true},
		{name: "high threat anything", m: hot, plan: "go north day", want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := g.WithContext(tt.m.EnvContext()).Accepts(strings.Fields(tt.plan), asg.AcceptOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("Accepts(%q) = %v, want %v", tt.plan, got, tt.want)
			}
		})
	}
}

func TestGrammarGeneration(t *testing.T) {
	g, err := Grammar()
	if err != nil {
		t.Fatal(err)
	}
	calm := Mission{Threat: "low", Escort: 3}
	out, err := g.WithContext(calm.EnvContext()).Generate(asg.GenerateOptions{MaxNodes: 12})
	if err != nil {
		t.Fatal(err)
	}
	// 3 routes x 2 times minus river-night = 5 plans.
	if len(out) != 5 {
		var texts []string
		for _, o := range out {
			texts = append(texts, o.Text())
		}
		t.Errorf("generated %d plans, want 5: %v", len(out), texts)
	}
}

func TestFeaturesAndLabel(t *testing.T) {
	m := Mission{Route: "river", Time: "night", Threat: "medium", Escort: 2, Approve: false}
	f := m.Features()
	if f["route"] != "river" || f["escort"] != "2" {
		t.Errorf("features = %v", f)
	}
	if m.Label() != "deny" {
		t.Errorf("label = %q", m.Label())
	}
	if (Mission{Approve: true}).Label() != "approve" {
		t.Error("approve label")
	}
}
