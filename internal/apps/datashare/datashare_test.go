package datashare

import (
	"strings"
	"testing"

	"agenp/internal/asg"
	"agenp/internal/ilasp"
	"agenp/internal/workload"
)

func TestGroundTruth(t *testing.T) {
	tests := []struct {
		name string
		o    Offer
		want bool
	}{
		{name: "trusted good image", o: Offer{Trust: "high", Type: "image", Quality: 4}, want: true},
		{name: "low trust", o: Offer{Trust: "low", Type: "image", Quality: 5}, want: false},
		{name: "sigint to medium", o: Offer{Trust: "medium", Type: "sigint", Quality: 5}, want: false},
		{name: "sigint to high", o: Offer{Trust: "high", Type: "sigint", Quality: 5}, want: true},
		{name: "poor quality", o: Offer{Trust: "high", Type: "video", Quality: 1}, want: false},
		{name: "medium trust document", o: Offer{Trust: "medium", Type: "document", Quality: 3}, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := groundTruth(tt.o); got != tt.want {
				t.Errorf("groundTruth = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestLearnRecoversSharingPolicy(t *testing.T) {
	all := Generate(13, 360)
	train, test := workload.Split(all, 60)
	learned, err := Learn(train, ilasp.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := learned.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.97 {
		t.Errorf("accuracy = %.3f from 60 offers\n%s", acc, learned.Result)
	}
	// The trust exception must be expressible: look for a negated or
	// trust-specific sigint rule in the hypothesis.
	found := false
	for _, r := range learned.Result.Hypothesis {
		s := r.String()
		if strings.Contains(s, "sigint") {
			found = true
		}
	}
	if !found {
		t.Errorf("no sigint rule learned:\n%s", learned.Result)
	}
}

func TestGrammarContextDependentSharing(t *testing.T) {
	g, err := Grammar()
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		o      Offer
		policy string
		want   bool
	}{
		{name: "high trust shares sigint", o: Offer{Trust: "high", Quality: 5}, policy: "share sigint", want: true},
		{name: "medium trust cannot share sigint", o: Offer{Trust: "medium", Quality: 5}, policy: "share sigint", want: false},
		{name: "medium trust shares images", o: Offer{Trust: "medium", Quality: 5}, policy: "share image", want: true},
		{name: "low trust shares nothing", o: Offer{Trust: "low", Quality: 5}, policy: "share image", want: false},
		{name: "poor quality withheld", o: Offer{Trust: "high", Quality: 1}, policy: "share image", want: false},
		{name: "withhold always valid", o: Offer{Trust: "low", Quality: 1}, policy: "withhold sigint", want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := g.WithContext(tt.o.EnvContext()).Accepts(strings.Fields(tt.policy), asg.AcceptOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("Accepts(%q) = %v, want %v", tt.policy, got, tt.want)
			}
		})
	}
}

func TestGrammarGenerationPerTrustLevel(t *testing.T) {
	g, err := Grammar()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, trust := range TrustLevels {
		o := Offer{Trust: trust, Quality: 5}
		out, err := g.WithContext(o.EnvContext()).Generate(asg.GenerateOptions{MaxNodes: 10})
		if err != nil {
			t.Fatal(err)
		}
		counts[trust] = len(out)
	}
	// 4 withhold policies always; shares: low 0, medium 3, high 4.
	if counts["low"] != 4 || counts["medium"] != 7 || counts["high"] != 8 {
		t.Errorf("generated policy counts = %v", counts)
	}
}

func TestInstancesShape(t *testing.T) {
	os := Generate(2, 10)
	ins := Instances(os)
	if len(ins) != 10 {
		t.Fatal("wrong size")
	}
	if ins[0].Features["trust"] == "" || (ins[0].Label != "share" && ins[0].Label != "withhold") {
		t.Errorf("instance = %+v", ins[0])
	}
}
