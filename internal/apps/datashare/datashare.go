// Package datashare implements the coalition data-sharing application
// of the paper (Section IV.D, after Verma et al.): partners with
// different trust levels offer data items of varying type, value and
// quality, and each party needs generative policies deciding what may be
// shared with (or accepted from) whom. Policy conditions are Boolean
// combinations over item attributes — including threshold tests the
// paper highlights ("testing whether the value of some data items is
// above a certain threshold") — which makes manual specification
// infeasible and learning attractive (experiment E11).
package datashare

import (
	"fmt"
	"strconv"

	"agenp/internal/asg"
	"agenp/internal/asglearn"
	"agenp/internal/asp"
	"agenp/internal/ilasp"
	"agenp/internal/mlbase"
	"agenp/internal/workload"
)

// Domain constants.
var (
	// TrustLevels order partner trust from least to most trusted.
	TrustLevels = []string{"low", "medium", "high"}
	// DataTypes are the data modalities of the ISR scenario.
	DataTypes = []string{"image", "video", "sigint", "document"}
	// QualityLevels grade data quality 1..5.
	QualityLevels = []int{1, 2, 3, 4, 5}
)

// Offer is one data-sharing decision instance: a partner offers (or
// requests) a data item.
type Offer struct {
	Trust   string // partner trust level
	Type    string // data type
	Quality int    // data quality 1..5
	// Share is the ground-truth label.
	Share bool
}

// groundTruth encodes the target policy:
//
//	deny :- partner trust is low
//	deny :- sigint data to a partner that is not fully trusted
//	deny :- quality below 3 (not worth the bandwidth/risk)
//	share otherwise
func groundTruth(o Offer) bool {
	if o.Trust == "low" {
		return false
	}
	if o.Type == "sigint" && o.Trust != "high" {
		return false
	}
	if o.Quality < 3 {
		return false
	}
	return true
}

// Generate samples n offers deterministically.
func Generate(seed uint64, n int) []Offer {
	rng := workload.NewRNG(seed)
	out := make([]Offer, n)
	for i := range out {
		o := Offer{
			Trust:   workload.Pick(rng, TrustLevels),
			Type:    workload.Pick(rng, DataTypes),
			Quality: workload.Pick(rng, QualityLevels),
		}
		o.Share = groundTruth(o)
		out[i] = o
	}
	return out
}

// Context renders the offer as ASP facts.
func (o Offer) Context() *asp.Program {
	return asp.NewProgram(
		asp.NewFact(asp.NewAtom("trust", asp.Constant{Name: o.Trust})),
		asp.NewFact(asp.NewAtom("dtype", asp.Constant{Name: o.Type})),
		asp.NewFact(asp.NewAtom("quality", asp.Integer{Value: o.Quality})),
	)
}

// EnvContext renders the partner/item environment without the data type
// (which the ASG policy string carries).
func (o Offer) EnvContext() *asp.Program {
	return asp.NewProgram(
		asp.NewFact(asp.NewAtom("trust", asp.Constant{Name: o.Trust})),
		asp.NewFact(asp.NewAtom("quality", asp.Integer{Value: o.Quality})),
	)
}

// Features encodes the offer for the ML baselines.
func (o Offer) Features() map[string]string {
	return map[string]string{
		"trust":   o.Trust,
		"type":    o.Type,
		"quality": strconv.Itoa(o.Quality),
	}
}

// Label renders the class.
func (o Offer) Label() string {
	if o.Share {
		return "share"
	}
	return "withhold"
}

// Instances converts offers for package mlbase.
func Instances(os []Offer) []mlbase.Instance {
	out := make([]mlbase.Instance, len(os))
	for i, o := range os {
		out[i] = mlbase.Instance{Features: o.Features(), Label: o.Label()}
	}
	return out
}

func denyAtom() asp.Atom {
	return asp.NewAtom("decision", asp.Constant{Name: "deny"})
}

// Bias is the learner's language bias for sharing policies.
func Bias() ilasp.Bias {
	trustTerms := make([]asp.Term, len(TrustLevels))
	for i, t := range TrustLevels {
		trustTerms[i] = asp.Constant{Name: t}
	}
	typeTerms := make([]asp.Term, len(DataTypes))
	for i, d := range DataTypes {
		typeTerms[i] = asp.Constant{Name: d}
	}
	return ilasp.Bias{
		Head: []ilasp.ModeAtom{ilasp.M("decision", ilasp.Const("effect"))},
		Body: []ilasp.ModeAtom{
			ilasp.M("trust", ilasp.Const("trust")),
			ilasp.M("dtype", ilasp.Const("dtype")),
			ilasp.M("quality", ilasp.Var("num")),
		},
		Constants: map[string][]asp.Term{
			"effect": {asp.Constant{Name: "deny"}},
			"trust":  trustTerms,
			"dtype":  typeTerms,
		},
		Comparisons: []ilasp.CmpSpec{{
			Type:   "num",
			Ops:    []asp.CmpOp{asp.CmpLt},
			Values: []asp.Term{asp.Integer{Value: 2}, asp.Integer{Value: 3}, asp.Integer{Value: 4}},
		}},
		AllowNegation: true,
		MaxVars:       1,
		MaxBody:       2,
		RequireBody:   true,
	}
}

// Learned is a trained sharing policy.
type Learned struct {
	Result *ilasp.Result
}

// LearningExamples converts offers into learner examples.
func LearningExamples(os []Offer, weight int) []ilasp.Example {
	deny := denyAtom()
	out := make([]ilasp.Example, len(os))
	for i, o := range os {
		ex := ilasp.Example{
			ID:       fmt.Sprintf("o%d", i+1),
			Positive: true,
			Context:  o.Context(),
			Weight:   weight,
		}
		if o.Share {
			ex.Exclusions = []asp.Atom{deny}
		} else {
			ex.Inclusions = []asp.Atom{deny}
		}
		out[i] = ex
	}
	return out
}

// Learn trains the symbolic sharing policy.
func Learn(train []Offer, opts ilasp.LearnOptions) (*Learned, error) {
	task := &ilasp.Task{
		Bias:     Bias(),
		Examples: LearningExamples(train, 0),
	}
	if opts.MaxRules == 0 {
		opts.MaxRules = 3
	}
	res, err := task.LearnIndependent(opts)
	if err != nil {
		return nil, fmt.Errorf("datashare: learning: %w", err)
	}
	return &Learned{Result: res}, nil
}

// Predict applies the learned deny rules to an offer.
func (l *Learned) Predict(o Offer) (share bool, err error) {
	models, err := asp.Solve(o.Context(), asp.SolveOptions{MaxModels: 1})
	if err != nil || len(models) == 0 {
		return false, fmt.Errorf("datashare: context unsolvable: %w", err)
	}
	deny := denyAtom()
	for _, r := range l.Result.Hypothesis {
		heads, err := asp.EvalRule(r, models[0])
		if err != nil {
			return false, err
		}
		for _, h := range heads {
			if h.Key() == deny.Key() {
				return false, nil
			}
		}
	}
	return true, nil
}

// Accuracy scores the learned policy.
func (l *Learned) Accuracy(test []Offer) (float64, error) {
	if len(test) == 0 {
		return 0, nil
	}
	correct := 0
	for _, o := range test {
		got, err := l.Predict(o)
		if err != nil {
			return 0, err
		}
		if got == o.Share {
			correct++
		}
	}
	return float64(correct) / float64(len(test)), nil
}

// GrammarSource is the data-sharing policy language for the AGENP
// framework and the coalition simulation: "share <type>" / "withhold
// <type>" policies vetted against partner trust and data quality.
const GrammarSource = `
policy -> "share" dtype {
    :- trust(low).
    :- dtype(sigint)@2, not trust(high).
    :- quality(Q), Q < 3.
}
policy -> "withhold" dtype
dtype -> "image" { dtype(image). }
dtype -> "video" { dtype(video). }
dtype -> "sigint" { dtype(sigint). }
dtype -> "document" { dtype(document). }
`

// Grammar parses the data-sharing ASG.
func Grammar() (*asg.Grammar, error) {
	return asg.ParseASG(GrammarSource)
}

// HypothesisSpace is the refinement space a coalition party's PAdaP may
// learn from when operator feedback contradicts the generated sharing
// policies: candidate constraints tightening the share production
// (production 0; @2 references its dtype child).
func HypothesisSpace() []asg.HypothesisRule {
	return []asg.HypothesisRule{
		asglearn.MustParseHypothesisRule(":- dtype(sigint)@2.", 0),
		asglearn.MustParseHypothesisRule(":- dtype(video)@2, not trust(high).", 0),
		asglearn.MustParseHypothesisRule(":- quality(Q), Q < 4.", 0),
	}
}
