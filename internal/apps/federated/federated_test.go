package federated

import (
	"testing"

	"agenp/internal/ilasp"
	"agenp/internal/workload"
)

func TestGroundTruth(t *testing.T) {
	tests := []struct {
		name string
		u    Update
		want bool
	}{
		{name: "good update", u: Update{Trust: "high", Provenance: "curated", Validation: 5}, want: true},
		{name: "low trust", u: Update{Trust: "low", Provenance: "curated", Validation: 5}, want: false},
		{name: "unknown provenance", u: Update{Trust: "high", Provenance: "unknown", Validation: 5}, want: false},
		{name: "weak validation", u: Update{Trust: "high", Provenance: "curated", Validation: 2}, want: false},
		{name: "medium raw ok", u: Update{Trust: "medium", Provenance: "raw", Validation: 3}, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := groundTruth(tt.u); got != tt.want {
				t.Errorf("groundTruth = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestGenerateDriftSigns(t *testing.T) {
	us := Generate(4, 100)
	for _, u := range us {
		if u.Incorporate && u.Drift <= 0 {
			t.Fatal("good update with non-positive drift")
		}
		if !u.Incorporate && u.Drift >= 0 {
			t.Fatal("bad update with non-negative drift")
		}
	}
}

func TestLearnRecoversFusionPolicy(t *testing.T) {
	all := Generate(31, 360)
	train, test := workload.Split(all, 60)
	learned, err := Learn(train, ilasp.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := learned.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.97 {
		t.Errorf("accuracy = %.3f\n%s", acc, learned.Result)
	}
}

// TestSimulationPolicyProtectsModel: a party filtering updates through
// the learned policy ends with a better model than one accepting
// everything, and close to the oracle.
func TestSimulationPolicyProtectsModel(t *testing.T) {
	history := Generate(7, 80)
	future := Generate(8, 120)
	learned, err := Learn(history[:40], ilasp.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	withPolicy, traj, err := Simulate(future, learned)
	if err != nil {
		t.Fatal(err)
	}
	acceptAll, _, err := Simulate(future, AcceptAll())
	if err != nil {
		t.Fatal(err)
	}
	oracle, _, err := Simulate(future, Oracle())
	if err != nil {
		t.Fatal(err)
	}
	if withPolicy <= acceptAll {
		t.Errorf("policy %.2f should beat accept-all %.2f", withPolicy, acceptAll)
	}
	if withPolicy < 0.9*oracle {
		t.Errorf("policy %.2f too far from oracle %.2f", withPolicy, oracle)
	}
	if len(traj) != len(future) {
		t.Errorf("trajectory length = %d", len(traj))
	}
}

func TestGatesAndInstances(t *testing.T) {
	u := Update{Trust: "low", Provenance: "raw", Validation: 1, Incorporate: false}
	if ok, _ := AcceptAll().Admit(u); !ok {
		t.Error("AcceptAll rejected")
	}
	if ok, _ := Oracle().Admit(u); ok {
		t.Error("Oracle admitted a bad update")
	}
	ins := Instances([]Update{u})
	if ins[0].Label != "discard" || ins[0].Features["validation"] != "1" {
		t.Errorf("instance = %+v", ins[0])
	}
}
