// Package federated implements the federated-learning application of
// the paper (Section IV.E): coalition members exchange model updates
// instead of raw data, and each receiving party needs policies deciding
// whether to incorporate a partner's update — decisions that depend on
// partner trust, the update's provenance and its validation metrics.
//
// The package pairs a generative policy (learned from past fusion
// outcomes) with a small federated-averaging simulation, so experiment
// E11 can show the accuracy trajectory of a party that filters updates
// through its learned policy versus one that accepts everything.
package federated

import (
	"fmt"
	"strconv"

	"agenp/internal/asp"
	"agenp/internal/ilasp"
	"agenp/internal/mlbase"
	"agenp/internal/workload"
)

// Domain constants.
var (
	// TrustLevels order partner trust.
	TrustLevels = []string{"low", "medium", "high"}
	// Provenances classify how an update's training data was curated.
	Provenances = []string{"curated", "raw", "unknown"}
	// ValidationScores grade the update on a held-out set, 1..5.
	ValidationScores = []int{1, 2, 3, 4, 5}
)

// Update is one offered model update with its fusion outcome.
type Update struct {
	Trust      string
	Provenance string
	Validation int
	// Incorporate is the ground-truth label: whether fusing this update
	// helped in hindsight.
	Incorporate bool
	// Drift is the true quality effect used by the fusion simulation:
	// positive improves the receiver's model, negative degrades it.
	Drift float64
}

// groundTruth encodes the fusion policy:
//
//	deny :- partner trust is low
//	deny :- unknown provenance
//	deny :- validation score below 3
//	incorporate otherwise
func groundTruth(u Update) bool {
	if u.Trust == "low" {
		return false
	}
	if u.Provenance == "unknown" {
		return false
	}
	if u.Validation < 3 {
		return false
	}
	return true
}

// Generate samples n updates deterministically. Good updates carry
// positive drift, bad ones negative drift (with noise), so the fusion
// simulation rewards correct policies.
func Generate(seed uint64, n int) []Update {
	rng := workload.NewRNG(seed)
	out := make([]Update, n)
	for i := range out {
		u := Update{
			Trust:      workload.Pick(rng, TrustLevels),
			Provenance: workload.Pick(rng, Provenances),
			Validation: workload.Pick(rng, ValidationScores),
		}
		u.Incorporate = groundTruth(u)
		if u.Incorporate {
			u.Drift = 0.5 + rng.Float64() // +0.5 .. +1.5
		} else {
			u.Drift = -1.5 + rng.Float64() // -1.5 .. -0.5
		}
		out[i] = u
	}
	return out
}

// Context renders the update as ASP facts.
func (u Update) Context() *asp.Program {
	return asp.NewProgram(
		asp.NewFact(asp.NewAtom("trust", asp.Constant{Name: u.Trust})),
		asp.NewFact(asp.NewAtom("provenance", asp.Constant{Name: u.Provenance})),
		asp.NewFact(asp.NewAtom("validation", asp.Integer{Value: u.Validation})),
	)
}

// Features encodes the update for the ML baselines.
func (u Update) Features() map[string]string {
	return map[string]string{
		"trust":      u.Trust,
		"provenance": u.Provenance,
		"validation": strconv.Itoa(u.Validation),
	}
}

// Label renders the class.
func (u Update) Label() string {
	if u.Incorporate {
		return "incorporate"
	}
	return "discard"
}

// Instances converts updates for package mlbase.
func Instances(us []Update) []mlbase.Instance {
	out := make([]mlbase.Instance, len(us))
	for i, u := range us {
		out[i] = mlbase.Instance{Features: u.Features(), Label: u.Label()}
	}
	return out
}

func denyAtom() asp.Atom {
	return asp.NewAtom("decision", asp.Constant{Name: "deny"})
}

// Bias is the learner's language bias for fusion policies.
func Bias() ilasp.Bias {
	trustTerms := make([]asp.Term, len(TrustLevels))
	for i, t := range TrustLevels {
		trustTerms[i] = asp.Constant{Name: t}
	}
	provTerms := make([]asp.Term, len(Provenances))
	for i, p := range Provenances {
		provTerms[i] = asp.Constant{Name: p}
	}
	return ilasp.Bias{
		Head: []ilasp.ModeAtom{ilasp.M("decision", ilasp.Const("effect"))},
		Body: []ilasp.ModeAtom{
			ilasp.M("trust", ilasp.Const("trust")),
			ilasp.M("provenance", ilasp.Const("prov")),
			ilasp.M("validation", ilasp.Var("num")),
		},
		Constants: map[string][]asp.Term{
			"effect": {asp.Constant{Name: "deny"}},
			"trust":  trustTerms,
			"prov":   provTerms,
		},
		Comparisons: []ilasp.CmpSpec{{
			Type:   "num",
			Ops:    []asp.CmpOp{asp.CmpLt},
			Values: []asp.Term{asp.Integer{Value: 2}, asp.Integer{Value: 3}, asp.Integer{Value: 4}},
		}},
		MaxVars:     1,
		MaxBody:     2,
		RequireBody: true,
	}
}

// Learned is a trained fusion policy.
type Learned struct {
	Result *ilasp.Result
}

// LearningExamples converts updates into learner examples.
func LearningExamples(us []Update, weight int) []ilasp.Example {
	deny := denyAtom()
	out := make([]ilasp.Example, len(us))
	for i, u := range us {
		ex := ilasp.Example{
			ID:       fmt.Sprintf("u%d", i+1),
			Positive: true,
			Context:  u.Context(),
			Weight:   weight,
		}
		if u.Incorporate {
			ex.Exclusions = []asp.Atom{deny}
		} else {
			ex.Inclusions = []asp.Atom{deny}
		}
		out[i] = ex
	}
	return out
}

// Learn trains the symbolic fusion policy.
func Learn(train []Update, opts ilasp.LearnOptions) (*Learned, error) {
	task := &ilasp.Task{
		Bias:     Bias(),
		Examples: LearningExamples(train, 0),
	}
	if opts.MaxRules == 0 {
		opts.MaxRules = 3
	}
	res, err := task.LearnIndependent(opts)
	if err != nil {
		return nil, fmt.Errorf("federated: learning: %w", err)
	}
	return &Learned{Result: res}, nil
}

// Predict applies the learned deny rules to an update.
func (l *Learned) Predict(u Update) (incorporate bool, err error) {
	models, err := asp.Solve(u.Context(), asp.SolveOptions{MaxModels: 1})
	if err != nil || len(models) == 0 {
		return false, fmt.Errorf("federated: context unsolvable: %w", err)
	}
	deny := denyAtom()
	for _, r := range l.Result.Hypothesis {
		heads, err := asp.EvalRule(r, models[0])
		if err != nil {
			return false, err
		}
		for _, h := range heads {
			if h.Key() == deny.Key() {
				return false, nil
			}
		}
	}
	return true, nil
}

// Accuracy scores the learned policy against labels.
func (l *Learned) Accuracy(test []Update) (float64, error) {
	if len(test) == 0 {
		return 0, nil
	}
	correct := 0
	for _, u := range test {
		got, err := l.Predict(u)
		if err != nil {
			return 0, err
		}
		if got == u.Incorporate {
			correct++
		}
	}
	return float64(correct) / float64(len(test)), nil
}

// Gate decides whether to fuse an update. AcceptAll and Oracle are the
// baselines; Learned policies implement it too.
type Gate interface {
	Admit(u Update) (bool, error)
}

// Admit implements Gate for a learned policy.
func (l *Learned) Admit(u Update) (bool, error) { return l.Predict(u) }

// GateFunc adapts a function to Gate.
type GateFunc func(u Update) (bool, error)

// Admit implements Gate.
func (f GateFunc) Admit(u Update) (bool, error) { return f(u) }

// AcceptAll admits every update.
func AcceptAll() Gate {
	return GateFunc(func(Update) (bool, error) { return true, nil })
}

// Oracle admits exactly the ground-truth-good updates.
func Oracle() Gate {
	return GateFunc(func(u Update) (bool, error) { return u.Incorporate, nil })
}

// Simulate runs the fusion loop: the receiver's model quality starts at
// zero and moves by each admitted update's drift. It returns the final
// quality and the per-round trajectory.
func Simulate(updates []Update, g Gate) (final float64, trajectory []float64, err error) {
	quality := 0.0
	trajectory = make([]float64, 0, len(updates))
	for _, u := range updates {
		admit, err := g.Admit(u)
		if err != nil {
			return 0, nil, err
		}
		if admit {
			quality += u.Drift
		}
		trajectory = append(trajectory, quality)
	}
	return quality, trajectory, nil
}
