package workload

import (
	"testing"

	"agenp/internal/ilasp"
	"agenp/internal/quality"
	"agenp/internal/xacml"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
	if r.Intn(0) != 0 {
		t.Error("Intn(0) should be 0")
	}
}

func TestShuffleAndSplit(t *testing.T) {
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	orig := append([]int(nil), xs...)
	Shuffle(NewRNG(1), xs)
	sum := 0
	for _, x := range xs {
		sum += x
	}
	if sum != 36 {
		t.Error("shuffle lost elements")
	}
	train, test := Split(orig, 3)
	if len(train) != 3 || len(test) != 5 {
		t.Errorf("split sizes %d/%d", len(train), len(test))
	}
	train[0] = 99
	if orig[0] == 99 {
		t.Error("Split aliases input")
	}
	tr2, te2 := Split(orig, 100)
	if len(tr2) != 8 || len(te2) != 0 {
		t.Error("oversized split")
	}
}

func TestGenXACMLDeterministicAndLabelled(t *testing.T) {
	a := GenXACML(11, 50)
	b := GenXACML(11, 50)
	if len(a.Examples) != 50 {
		t.Fatalf("examples = %d", len(a.Examples))
	}
	for i := range a.Examples {
		if a.Examples[i].Request.Key() != b.Examples[i].Request.Key() {
			t.Fatal("generation not deterministic")
		}
		want := a.Policy.Evaluate(a.Examples[i].Request)
		if a.Examples[i].Decision != want {
			t.Fatalf("example %d mislabelled", i)
		}
	}
}

func TestGroundTruthDisjointRules(t *testing.T) {
	// The three ground-truth rules never fire together with opposite
	// effects (required for independent-rule learnability).
	pol := GroundTruthPolicy()
	d := quality.FromBias(xacml.BiasFromRequests(allRequests()))
	rep := quality.Assess(pol, d, quality.Options{})
	if !rep.Consistent {
		t.Errorf("ground truth has conflicts: %v", rep.Conflicts)
	}
}

func allRequests() []xacml.Request {
	schema := DefaultSchema()
	var out []xacml.Request
	for _, role := range schema.Roles {
		for _, age := range schema.Ages {
			for _, res := range schema.Resources {
				for _, act := range schema.Actions {
					out = append(out, xacml.NewRequest().
						Set(xacml.Subject, "role", xacml.S(role)).
						Set(xacml.Subject, "age", xacml.I(age)).
						Set(xacml.Resource, "type", xacml.S(res)).
						Set(xacml.Action, "id", xacml.S(act)))
				}
			}
		}
	}
	return out
}

func TestInjectNoiseAndFilter(t *testing.T) {
	ds := GenXACML(5, 100)
	clean := make([]xacml.Decision, len(ds.Examples))
	for i, e := range ds.Examples {
		clean[i] = e.Decision
	}
	corrupted := InjectNoise(ds, 0.2, 99)
	if len(corrupted) == 0 || len(corrupted) > 40 {
		t.Fatalf("corrupted %d of 100 at 20%%", len(corrupted))
	}
	changed := 0
	for i := range ds.Examples {
		if ds.Examples[i].Decision != clean[i] {
			changed++
		}
	}
	if changed != len(corrupted) {
		t.Errorf("changed %d but reported %d", changed, len(corrupted))
	}
	// Filtering removes NotApplicable and inconsistent duplicates.
	filtered := FilterLowQuality(ds.Examples)
	for _, e := range filtered {
		if e.Decision == xacml.DecisionNotApplicable {
			t.Fatal("NotApplicable survived filter")
		}
	}
	if len(filtered) >= len(ds.Examples) {
		t.Error("filter removed nothing")
	}
}

func TestFilterLowQualityInconsistent(t *testing.T) {
	r := xacml.NewRequest().Set(xacml.Subject, "role", xacml.S("dba"))
	examples := []LabeledRequest{
		{Request: r, Decision: xacml.DecisionPermit},
		{Request: r.Clone(), Decision: xacml.DecisionDeny},
		{Request: xacml.NewRequest().Set(xacml.Subject, "role", xacml.S("dev")), Decision: xacml.DecisionPermit},
	}
	out := FilterLowQuality(examples)
	if len(out) != 1 {
		t.Errorf("filtered = %d, want 1 (inconsistent pair dropped)", len(out))
	}
}

func TestLearningExamplesShape(t *testing.T) {
	ds := GenXACML(3, 30)
	ex := LearningExamples(ds.Examples, 0)
	if len(ex) != 30 {
		t.Fatalf("examples = %d", len(ex))
	}
	for i, e := range ex {
		if !e.Positive {
			t.Fatal("all learning examples are positive CDPIs")
		}
		switch ds.Examples[i].Decision {
		case xacml.DecisionPermit, xacml.DecisionDeny:
			if len(e.Inclusions) != 1 || len(e.Exclusions) != 1 {
				t.Fatalf("example %d shape: %+v", i, e)
			}
		default:
			if len(e.Inclusions) != 0 || len(e.Exclusions) != 2 {
				t.Fatalf("NA example %d shape: %+v", i, e)
			}
		}
	}
}

// TestEndToEndLearningRecoversGroundTruth is the E3 (Figure 3a) core:
// from enough clean request/decision examples the learner recovers a
// policy decision-equivalent to the ground truth.
func TestEndToEndLearningRecoversGroundTruth(t *testing.T) {
	ds := GenXACML(17, 80)
	task := &ilasp.Task{
		Bias:     AccessBias(ds.Schema, nil),
		Examples: LearningExamples(ds.Examples, 0),
	}
	res, err := task.LearnIndependent(ilasp.LearnOptions{MaxRules: 4})
	if err != nil {
		t.Fatal(err)
	}
	learned, err := xacml.PolicyFromHypothesis(res.Hypothesis, "learned")
	if err != nil {
		t.Fatalf("rendering %v: %v", res.Hypothesis, err)
	}
	// Decision-equivalence over the whole domain.
	gt := GroundTruthPolicy()
	for _, r := range allRequests() {
		if learned.Evaluate(r) != gt.Evaluate(r) {
			t.Fatalf("disagreement on %s: learned %v, truth %v\nlearned policy:\n%s",
				r, learned.Evaluate(r), gt.Evaluate(r), learned.Format())
		}
	}
	if res.Covered != res.Total {
		t.Errorf("coverage %d/%d", res.Covered, res.Total)
	}
}

func TestAccuracyHelper(t *testing.T) {
	ds := GenXACML(2, 40)
	if acc := Accuracy(ds.Policy, ds.Examples); acc != 1.0 {
		t.Errorf("ground truth accuracy on own labels = %f", acc)
	}
	if Accuracy(ds.Policy, nil) != 0 {
		t.Error("empty test accuracy should be 0")
	}
}

func TestAccessBiasSpace(t *testing.T) {
	space, err := AccessBias(DefaultSchema(), []int{18}).Space()
	if err != nil {
		t.Fatal(err)
	}
	if len(space) == 0 {
		t.Fatal("empty space")
	}
	want := map[string]bool{
		"decision(permit) :- subject(role,dba).":                      false,
		"decision(deny) :- action(id,write), subject(role,guest).":    false,
		"decision(permit) :- action(id,read), resource(type,report).": false,
		"decision(permit) :- subject(age,V1), V1 >= 18.":              false,
	}
	for _, c := range space {
		if _, ok := want[c.Rule.String()]; ok {
			want[c.Rule.String()] = true
		}
	}
	for rule, found := range want {
		if !found {
			t.Errorf("space missing %q", rule)
		}
	}
}
