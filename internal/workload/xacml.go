package workload

import (
	"fmt"

	"agenp/internal/asp"
	"agenp/internal/ilasp"
	"agenp/internal/xacml"
)

// XACMLSchema is the attribute universe of the synthetic conformance
// dataset, mirroring the shape of the public XACML test set the paper
// uses (subject, resource, action and environment attributes with small
// categorical/integer domains).
type XACMLSchema struct {
	Roles     []string
	Ages      []int
	Resources []string
	Actions   []string
}

// DefaultSchema returns the schema used across the experiments.
func DefaultSchema() XACMLSchema {
	return XACMLSchema{
		Roles:     []string{"dba", "dev", "analyst", "guest"},
		Ages:      []int{12, 16, 20, 30, 45, 60},
		Resources: []string{"report", "record", "log"},
		Actions:   []string{"read", "write", "delete"},
	}
}

// GroundTruthPolicy is the policy the synthetic dataset is labelled
// with, shaped like the role/resource/action rules of Figure 3a: DBAs
// may do anything, anyone may read reports, and guests may never write.
// The three rules have pairwise-disjoint targets, so the policy is
// expressible as an independent ASP rule set (one decision rule per
// XACML rule) — the form the learner recovers in experiment E3.
func GroundTruthPolicy() *xacml.Policy {
	return &xacml.Policy{
		ID:        "ground-truth",
		Combining: xacml.DenyOverrides,
		Rules: []xacml.Rule{
			{
				ID:     "deny-guest-write",
				Effect: xacml.Deny,
				Target: xacml.Target{
					{Category: xacml.Subject, Attr: "role", Op: xacml.OpEq, Value: xacml.S("guest")},
					{Category: xacml.Action, Attr: "id", Op: xacml.OpEq, Value: xacml.S("write")},
				},
			},
			{
				ID:     "permit-dba",
				Effect: xacml.Permit,
				Target: xacml.Target{{Category: xacml.Subject, Attr: "role", Op: xacml.OpEq, Value: xacml.S("dba")}},
			},
			{
				ID:     "permit-read-report",
				Effect: xacml.Permit,
				Target: xacml.Target{
					{Category: xacml.Action, Attr: "id", Op: xacml.OpEq, Value: xacml.S("read")},
					{Category: xacml.Resource, Attr: "type", Op: xacml.OpEq, Value: xacml.S("report")},
				},
			},
		},
	}
}

// LabeledRequest is one request/response example of the dataset.
type LabeledRequest struct {
	Request  xacml.Request
	Decision xacml.Decision
}

// Dataset is a labelled request set together with its ground truth.
type Dataset struct {
	Policy   *xacml.Policy
	Schema   XACMLSchema
	Examples []LabeledRequest
}

// GenXACML samples n random requests from the schema and labels them
// with the ground-truth policy.
func GenXACML(seed uint64, n int) *Dataset {
	return GenXACMLWith(seed, n, DefaultSchema(), GroundTruthPolicy())
}

// GenXACMLWith samples from a custom schema and policy.
func GenXACMLWith(seed uint64, n int, schema XACMLSchema, pol *xacml.Policy) *Dataset {
	rng := NewRNG(seed)
	ds := &Dataset{Policy: pol, Schema: schema, Examples: make([]LabeledRequest, 0, n)}
	for i := 0; i < n; i++ {
		r := xacml.NewRequest().
			Set(xacml.Subject, "role", xacml.S(Pick(rng, schema.Roles))).
			Set(xacml.Subject, "age", xacml.I(Pick(rng, schema.Ages))).
			Set(xacml.Resource, "type", xacml.S(Pick(rng, schema.Resources))).
			Set(xacml.Action, "id", xacml.S(Pick(rng, schema.Actions)))
		ds.Examples = append(ds.Examples, LabeledRequest{Request: r, Decision: pol.Evaluate(r)})
	}
	return ds
}

// InjectNoise relabels a fraction of the examples: flipped decisions and
// spurious NotApplicable responses, the two "low quality" example kinds
// of Section IV.C (inconsistent responses and irrelevant responses). It
// returns the indices that were corrupted.
func InjectNoise(ds *Dataset, frac float64, seed uint64) []int {
	rng := NewRNG(seed)
	var corrupted []int
	for i := range ds.Examples {
		if rng.Float64() >= frac {
			continue
		}
		corrupted = append(corrupted, i)
		switch rng.Intn(2) {
		case 0: // inconsistent response: flip permit/deny
			if ds.Examples[i].Decision == xacml.DecisionPermit {
				ds.Examples[i].Decision = xacml.DecisionDeny
			} else {
				ds.Examples[i].Decision = xacml.DecisionPermit
			}
		default: // irrelevant response
			ds.Examples[i].Decision = xacml.DecisionNotApplicable
		}
	}
	return corrupted
}

// FilterLowQuality removes the "low quality" examples per the paper's
// proposed mitigation: NotApplicable responses are pruned, and pairs of
// identical requests with inconsistent responses are dropped entirely.
func FilterLowQuality(examples []LabeledRequest) []LabeledRequest {
	byKey := make(map[string]xacml.Decision)
	inconsistent := make(map[string]bool)
	for _, e := range examples {
		k := e.Request.Key()
		if prev, ok := byKey[k]; ok && prev != e.Decision {
			inconsistent[k] = true
		}
		byKey[k] = e.Decision
	}
	var out []LabeledRequest
	for _, e := range examples {
		if e.Decision == xacml.DecisionNotApplicable {
			continue
		}
		if inconsistent[e.Request.Key()] {
			continue
		}
		out = append(out, e)
	}
	return out
}

// LearningExamples converts labelled requests into ILASP examples: each
// request's facts become the example context, and the observed decision
// becomes a brave inclusion with the opposite decision excluded.
// NotApplicable responses — which are not proper decisions (paper,
// Fig. 3b Policy 3) — become examples excluding both decisions, which is
// exactly how a learner "misinterprets an irrelevant response as a
// proper decision" unless they are filtered out first.
func LearningExamples(examples []LabeledRequest, weight int) []ilasp.Example {
	permit := xacml.DecisionAtom(xacml.Permit)
	deny := xacml.DecisionAtom(xacml.Deny)
	out := make([]ilasp.Example, 0, len(examples))
	for i, e := range examples {
		ex := ilasp.Example{
			ID:       fmt.Sprintf("req%d", i+1),
			Positive: true,
			Context:  xacml.RequestFacts(e.Request),
			Weight:   weight,
		}
		switch e.Decision {
		case xacml.DecisionPermit:
			ex.Inclusions = []asp.Atom{permit}
			ex.Exclusions = []asp.Atom{deny}
		case xacml.DecisionDeny:
			ex.Inclusions = []asp.Atom{deny}
			ex.Exclusions = []asp.Atom{permit}
		default:
			ex.Exclusions = []asp.Atom{permit, deny}
		}
		out = append(out, ex)
	}
	return out
}

// AccessBias builds the learner's language bias for the dataset schema:
// decision heads, attribute body atoms with constant pools, and age
// comparisons. ILASP-style mode declarations for the access-control
// study.
func AccessBias(schema XACMLSchema, thresholds []int) ilasp.Bias {
	roleTerms := make([]asp.Term, len(schema.Roles))
	for i, r := range schema.Roles {
		roleTerms[i] = asp.Constant{Name: r}
	}
	resTerms := make([]asp.Term, len(schema.Resources))
	for i, r := range schema.Resources {
		resTerms[i] = asp.Constant{Name: r}
	}
	actTerms := make([]asp.Term, len(schema.Actions))
	for i, a := range schema.Actions {
		actTerms[i] = asp.Constant{Name: a}
	}
	thrTerms := make([]asp.Term, len(thresholds))
	for i, v := range thresholds {
		thrTerms[i] = asp.Integer{Value: v}
	}
	return ilasp.Bias{
		Head: []ilasp.ModeAtom{
			ilasp.M("decision", ilasp.Const("effect")),
		},
		Body: []ilasp.ModeAtom{
			ilasp.M("subject", ilasp.Const("roleattr"), ilasp.Const("role")),
			ilasp.M("subject", ilasp.Const("ageattr"), ilasp.Var("num")),
			ilasp.M("resource", ilasp.Const("typeattr"), ilasp.Const("res")),
			ilasp.M("action", ilasp.Const("idattr"), ilasp.Const("act")),
		},
		Constants: map[string][]asp.Term{
			"effect":   {asp.Constant{Name: "permit"}, asp.Constant{Name: "deny"}},
			"role":     roleTerms,
			"res":      resTerms,
			"act":      actTerms,
			"roleattr": {asp.Constant{Name: "role"}},
			"ageattr":  {asp.Constant{Name: "age"}},
			"typeattr": {asp.Constant{Name: "type"}},
			"idattr":   {asp.Constant{Name: "id"}},
		},
		Comparisons: []ilasp.CmpSpec{{
			Type:   "num",
			Ops:    []asp.CmpOp{asp.CmpLt, asp.CmpGeq},
			Values: thrTerms,
		}},
		MaxVars:     1,
		MaxBody:     3,
		RequireBody: true,
	}
}

// Accuracy scores learned decision rules against labelled requests by
// evaluating the rendered XACML policy.
func Accuracy(learned *xacml.Policy, test []LabeledRequest) float64 {
	if len(test) == 0 {
		return 0
	}
	correct := 0
	for _, e := range test {
		if learned.Evaluate(e.Request) == e.Decision {
			correct++
		}
	}
	return float64(correct) / float64(len(test))
}
