// Package workload provides deterministic dataset and scenario
// generators for the paper's experiments: the XACML request/response
// datasets of the Section IV.C case study (including the noisy and
// overfitting-prone variants behind Figure 3b), example-set construction
// for the learner, and generic utilities (seeded RNG, label noise,
// train/test splits) shared by the application scenarios.
package workload

// RNG is a small deterministic generator (splitmix64) so every
// experiment is reproducible from a seed without math/rand global state.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed + 0x9e3779b97f4a7c15}
}

// Uint64 returns the next raw value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Pick returns a uniformly chosen element.
func Pick[T any](r *RNG, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// Shuffle permutes xs in place (Fisher-Yates).
func Shuffle[T any](r *RNG, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Split partitions xs into a training prefix of size n (after copying;
// the input is untouched) and the remaining test set.
func Split[T any](xs []T, n int) (train, test []T) {
	cp := make([]T, len(xs))
	copy(cp, xs)
	if n > len(cp) {
		n = len(cp)
	}
	return cp[:n], cp[n:]
}
