package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SpanData is one completed span as delivered to a Sink (and one line
// of the JSONL trace format consumed by cmd/agenptrace).
type SpanData struct {
	// ID is unique within the process; Parent is 0 for root spans.
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Name identifies the operation ("asp.ground", "ilasp.check", ...).
	Name string `json:"name"`
	// Start is the wall-clock start time; DurNs the span duration.
	Start time.Time `json:"start"`
	DurNs int64     `json:"dur_ns"`
	// Attrs carry small key=value annotations (counts, verdicts).
	Attrs []Attr `json:"attrs,omitempty"`
}

// Attr is one span annotation.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Sink receives completed spans. Emit may be called concurrently.
type Sink interface {
	Emit(SpanData)
}

// sinkBox wraps the Sink interface so an atomic.Pointer can hold it.
type sinkBox struct{ s Sink }

var (
	activeSink atomic.Pointer[sinkBox]
	spanIDs    atomic.Uint64
)

// SetSink installs the process-wide span sink; nil disables tracing.
// With no sink installed StartSpan and every Span method are no-ops
// costing one atomic load and zero allocations.
func SetSink(s Sink) {
	if s == nil {
		activeSink.Store(nil)
		return
	}
	activeSink.Store(&sinkBox{s: s})
}

// TracingEnabled reports whether a sink is installed.
func TracingEnabled() bool { return activeSink.Load() != nil }

// Span is an in-flight traced operation. The zero Span is inert: all
// methods are no-ops, so callers never need to branch on whether
// tracing is enabled.
type Span struct {
	sink Sink
	data SpanData
}

// StartSpan begins a root span. When no sink is installed the returned
// span is inert.
func StartSpan(name string) Span {
	b := activeSink.Load()
	if b == nil {
		return Span{}
	}
	return Span{sink: b.s, data: SpanData{
		ID:    spanIDs.Add(1),
		Name:  name,
		Start: time.Now(),
	}}
}

// Child begins a span parented under sp. A child of an inert span is
// inert.
func (sp *Span) Child(name string) Span {
	if sp.sink == nil {
		return Span{}
	}
	return Span{sink: sp.sink, data: SpanData{
		ID:     spanIDs.Add(1),
		Parent: sp.data.ID,
		Name:   name,
		Start:  time.Now(),
	}}
}

// SetAttr annotates the span. No-op on inert spans.
func (sp *Span) SetAttr(k, v string) {
	if sp.sink == nil {
		return
	}
	sp.data.Attrs = append(sp.data.Attrs, Attr{K: k, V: v})
}

// End completes the span and emits it to the sink. No-op on inert
// spans; calling End twice emits twice (don't).
func (sp *Span) End() {
	if sp.sink == nil {
		return
	}
	sp.data.DurNs = int64(time.Since(sp.data.Start))
	sp.sink.Emit(sp.data)
}

// JSONLSink writes one JSON-encoded SpanData per line. Safe for
// concurrent Emit calls.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	w   io.Writer
}

// NewJSONLSink wraps a writer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w), w: w}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(d SpanData) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(d)
}

// CollectorSink buffers spans in memory (tests, agenptrace self-tests).
type CollectorSink struct {
	mu    sync.Mutex
	spans []SpanData
}

// Emit implements Sink.
func (s *CollectorSink) Emit(d SpanData) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spans = append(s.spans, d)
}

// Spans returns a copy of the collected spans.
func (s *CollectorSink) Spans() []SpanData {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SpanData(nil), s.spans...)
}
