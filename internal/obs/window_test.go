package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixed base time for deterministic window tests: an arbitrary instant
// far from zero so slice epochs are all positive.
const winBase = int64(1_700_000_000_000_000_000)

func TestWindowedBasicAggregation(t *testing.T) {
	w := newWindowed()
	for i := int64(0); i < 10; i++ {
		w.ObserveAtNs(winBase+i*int64(time.Millisecond), 1000)
	}
	snap := w.SnapshotAtNs(winBase + 10*int64(time.Millisecond))
	for _, name := range []string{"10s", "1m", "5m"} {
		win, ok := snap[name]
		if !ok {
			t.Fatalf("window %q missing from snapshot", name)
		}
		if win.Count != 10 {
			t.Fatalf("%s count: got %d, want 10", name, win.Count)
		}
		if win.SumNs != 10000 {
			t.Fatalf("%s sum: got %d, want 10000", name, win.SumNs)
		}
		if win.MaxNs != 1000 {
			t.Fatalf("%s max: got %d, want 1000", name, win.MaxNs)
		}
	}
}

func TestWindowedDecay(t *testing.T) {
	w := newWindowed()
	w.ObserveAtNs(winBase, 500)
	// Just after: visible everywhere.
	snap := w.SnapshotAtNs(winBase + int64(time.Second))
	if snap["10s"].Count != 1 || snap["1m"].Count != 1 || snap["5m"].Count != 1 {
		t.Fatalf("fresh observation missing: %+v", snap)
	}
	// 30s later: out of the 10s window, still in 1m and 5m.
	snap = w.SnapshotAtNs(winBase + 30*int64(time.Second))
	if snap["10s"].Count != 0 {
		t.Fatalf("10s window should have decayed, count=%d", snap["10s"].Count)
	}
	if snap["1m"].Count != 1 || snap["5m"].Count != 1 {
		t.Fatalf("1m/5m should retain the observation: %+v", snap)
	}
	// 2m later: only 5m retains it.
	snap = w.SnapshotAtNs(winBase + 120*int64(time.Second))
	if snap["1m"].Count != 0 {
		t.Fatalf("1m window should have decayed, count=%d", snap["1m"].Count)
	}
	if snap["5m"].Count != 1 {
		t.Fatalf("5m should retain the observation: %+v", snap)
	}
	// 10m later: everything decayed.
	snap = w.SnapshotAtNs(winBase + 600*int64(time.Second))
	if snap["5m"].Count != 0 {
		t.Fatalf("5m window should have decayed, count=%d", snap["5m"].Count)
	}
}

func TestWindowedSliceReuse(t *testing.T) {
	w := newWindowed()
	// Two bursts landing on the same 10s-ring slot (11 slices of 1s →
	// epochs 11 apart reuse a slot). The second burst must not inherit
	// the first's counts.
	w.ObserveAtNs(winBase, 100)
	w.ObserveAtNs(winBase, 100)
	later := winBase + 11*int64(time.Second)
	w.ObserveAtNs(later, 100)
	snap := w.SnapshotAtNs(later)
	if snap["10s"].Count != 1 {
		t.Fatalf("slot reuse leaked old counts: got %d, want 1", snap["10s"].Count)
	}
}

func TestWindowedQuantiles(t *testing.T) {
	w := newWindowed()
	// 90 fast (≈1µs) + 10 slow (≈1ms): p50 stays in the fast bucket,
	// p99 lands in the slow one.
	for i := 0; i < 90; i++ {
		w.ObserveAtNs(winBase, int64(time.Microsecond))
	}
	for i := 0; i < 10; i++ {
		w.ObserveAtNs(winBase, int64(time.Millisecond))
	}
	win := w.SnapshotAtNs(winBase)["10s"]
	if win.P50Ns < int64(time.Microsecond)/2 || win.P50Ns > 2*int64(time.Microsecond) {
		t.Fatalf("p50 = %d ns, want about 1µs", win.P50Ns)
	}
	if win.P99Ns < int64(time.Millisecond)/2 || win.P99Ns > 2*int64(time.Millisecond) {
		t.Fatalf("p99 = %d ns, want about 1ms", win.P99Ns)
	}
	if win.P95Ns < win.P50Ns || win.P99Ns < win.P95Ns {
		t.Fatalf("quantiles not monotone: p50=%d p95=%d p99=%d", win.P50Ns, win.P95Ns, win.P99Ns)
	}
}

// TestWindowedSpikeMovesP99 is the acceptance check at unit level: an
// induced latency spike moves the 10s-window p99 within one window, and
// decays back out after the window passes.
func TestWindowedSpikeMovesP99(t *testing.T) {
	w := newWindowed()
	// Steady state: 200 fast observations.
	for i := int64(0); i < 200; i++ {
		w.ObserveAtNs(winBase+i*int64(10*time.Millisecond), int64(50*time.Microsecond))
	}
	steadyEnd := winBase + 2*int64(time.Second)
	before := w.SnapshotAtNs(steadyEnd)["10s"].P99Ns
	if before > int64(200*time.Microsecond) {
		t.Fatalf("steady p99 unexpectedly high: %d", before)
	}
	// Spike: 20 slow observations right after.
	for i := int64(0); i < 20; i++ {
		w.ObserveAtNs(steadyEnd+i*int64(10*time.Millisecond), int64(20*time.Millisecond))
	}
	spikeEnd := steadyEnd + int64(time.Second)
	during := w.SnapshotAtNs(spikeEnd)["10s"].P99Ns
	if during < int64(10*time.Millisecond) {
		t.Fatalf("p99 did not move with the spike: before=%d during=%d", before, during)
	}
	// One full window later the spike has decayed out.
	after := w.SnapshotAtNs(spikeEnd + 11*int64(time.Second))["10s"]
	if after.Count != 0 {
		t.Fatalf("spike should decay out of the 10s window, count=%d", after.Count)
	}
}

func TestWindowedSLOBreaches(t *testing.T) {
	w := newWindowed()
	w.SetSLO(time.Millisecond)
	if w.SLO() != time.Millisecond {
		t.Fatalf("SLO round trip")
	}
	w.ObserveAtNs(winBase, int64(time.Microsecond))    // fine
	w.ObserveAtNs(winBase, int64(time.Millisecond))    // breach (at threshold)
	w.ObserveAtNs(winBase, int64(10*time.Millisecond)) // breach
	win := w.SnapshotAtNs(winBase)["10s"]
	if win.Breach != 2 {
		t.Fatalf("window breaches: got %d, want 2", win.Breach)
	}
	if win.SLONs != int64(time.Millisecond) {
		t.Fatalf("snapshot slo_ns: got %d", win.SLONs)
	}
	if w.LifetimeBreaches() != 2 {
		t.Fatalf("lifetime breaches: got %d, want 2", w.LifetimeBreaches())
	}
	// Breach counters decay with the window; the lifetime counter does
	// not.
	later := w.SnapshotAtNs(winBase + 60*int64(time.Second))["10s"]
	if later.Breach != 0 {
		t.Fatalf("window breaches should decay, got %d", later.Breach)
	}
	if w.LifetimeBreaches() != 2 {
		t.Fatalf("lifetime breaches must survive decay, got %d", w.LifetimeBreaches())
	}
}

func TestWindowedStaleObservationDropped(t *testing.T) {
	w := newWindowed()
	w.ObserveAtNs(winBase+20*int64(time.Second), 100)
	// An observation 11s in the past maps to a slot whose epoch has
	// already advanced past it in the 10s ring; it must not pollute the
	// newer slice (the 1m/5m rings may still accept it).
	w.ObserveAtNs(winBase+9*int64(time.Second), 999)
	snap := w.SnapshotAtNs(winBase + 20*int64(time.Second))
	if got := snap["10s"].Count; got != 1 {
		t.Fatalf("stale observation leaked into 10s window: count=%d", got)
	}
}

func TestWindowedConcurrent(t *testing.T) {
	w := newWindowed()
	w.SetSLO(time.Millisecond)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := w.Snapshot()
			for _, win := range snap {
				if win.Count < 0 || win.SumNs < 0 {
					t.Errorf("negative aggregate: %+v", win)
					return
				}
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				w.Observe(time.Duration(i%2000) * time.Microsecond)
			}
		}()
	}
	// Writers share wg with the reader; wait for writers via a second
	// group would complicate — just sleep-free join: close stop after
	// the writer goroutines are done, which we detect by total count.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if w.Snapshot()["5m"].Count >= 4*5000 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
}

func TestRegistryWindowInSnapshot(t *testing.T) {
	reg := NewRegistry()
	w := reg.Window("serve.decide")
	w.ObserveAtNs(winBase, int64(time.Millisecond))

	snap := reg.SnapshotAtNs(winBase)
	win, ok := snap.Windows["serve.decide"]
	if !ok {
		t.Fatalf("window missing from registry snapshot")
	}
	if win["10s"].Count != 1 {
		t.Fatalf("window snapshot count: %+v", win)
	}

	// Same instance on re-get.
	if reg.Window("serve.decide") != w {
		t.Fatalf("Window is not get-or-create")
	}

	// Text rendering includes the window lines.
	var sb strings.Builder
	if err := snap.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(sb.String(), "serve.decide[10s]") {
		t.Fatalf("WriteText missing window line:\n%s", sb.String())
	}

	// Reset zeroes windows in place.
	reg.Reset()
	snap = reg.SnapshotAtNs(winBase)
	if snap.Windows["serve.decide"]["10s"].Count != 0 {
		t.Fatalf("Reset did not clear window")
	}
}

func TestSnapshotOmitsEmptyWindows(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Inc()
	raw, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if strings.Contains(string(raw), "windows") {
		t.Fatalf("snapshot without windows must omit the field: %s", raw)
	}
}
