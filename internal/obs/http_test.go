package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func newTestRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("test.requests").Add(42)
	reg.Gauge("test.depth").Set(3)
	reg.Histogram("test.latency").Observe(1500 * time.Nanosecond)
	reg.Window("test.window").ObserveAtNs(time.Now().UnixNano(), int64(time.Millisecond))
	return reg
}

func TestHandlerJSON(t *testing.T) {
	reg := newTestRegistry()
	rr := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))

	if rr.Code != http.StatusOK {
		t.Fatalf("status: got %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("content type: got %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("body is not valid JSON: %v", err)
	}
	if snap.Counters["test.requests"] != 42 {
		t.Fatalf("counter missing from body: %+v", snap.Counters)
	}
	if _, ok := snap.Windows["test.window"]; !ok {
		t.Fatalf("window missing from body")
	}
}

func TestHandlerPromFormat(t *testing.T) {
	reg := newTestRegistry()
	rr := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics?format=prom", nil))

	if rr.Code != http.StatusOK {
		t.Fatalf("status: got %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type: got %q", ct)
	}
	checkPromExposition(t, rr.Body.String())
}

func TestPromHandler(t *testing.T) {
	reg := newTestRegistry()
	rr := httptest.NewRecorder()
	reg.PromHandler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics/prom", nil))

	if rr.Code != http.StatusOK {
		t.Fatalf("status: got %d", rr.Code)
	}
	body := rr.Body.String()
	checkPromExposition(t, body)
	for _, want := range []string{
		"test_requests_total 42",
		"test_depth 3",
		"test_latency_seconds_count 1",
		`test_window_window_p99_seconds{window="10s"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestHandlerMethodNotAllowed(t *testing.T) {
	reg := newTestRegistry()
	for _, h := range []http.Handler{reg.Handler(), reg.PromHandler()} {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, httptest.NewRequest(method, "/metrics", nil))
			if rr.Code != http.StatusMethodNotAllowed {
				t.Fatalf("%s: got status %d, want 405", method, rr.Code)
			}
			if allow := rr.Header().Get("Allow"); allow != http.MethodGet {
				t.Fatalf("%s: Allow header %q, want GET", method, allow)
			}
		}
	}
}

// checkPromExposition validates the text exposition shape: every line
// is a comment or "name[{labels}] value", TYPE lines precede their
// family's samples, and histogram buckets are cumulative.
func checkPromExposition(t *testing.T, body string) {
	t.Helper()
	if body == "" {
		t.Fatalf("empty exposition")
	}
	typed := map[string]bool{}
	var lastBucketFamily string
	var lastCum int64
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unterminated label set: %q", line)
			}
			name = name[:i]
		}
		for _, c := range name {
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == ':') {
				t.Fatalf("invalid metric name char %q in %q", c, line)
			}
		}
		// Histogram buckets must be cumulative per family.
		if strings.HasSuffix(name, "_bucket") {
			v, err := strconv.ParseInt(line[sp+1:], 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", line[sp+1:], err)
			}
			if name == lastBucketFamily && v < lastCum {
				t.Fatalf("non-cumulative buckets in %s: %d after %d", name, v, lastCum)
			}
			lastBucketFamily, lastCum = name, v
		}
	}
	if len(typed) == 0 {
		t.Fatalf("no TYPE lines in exposition")
	}
}
