package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder is the decision flight recorder: a sharded, lock-free,
// fixed-size ring of compact binary records written by the serving path
// (one per sampled decision) and decoded on demand for the /audit
// endpoint and offline analysis.
//
// The cost model is asymmetric by design. The caller drives sampling
// from a counter it already pays for (Counter.Bump on the decisions
// counter): a non-sampled decision costs one mask test, so the recorder
// can ride a ~30 ns decision path inside a 10% overhead budget. A
// sampled-in decision pays the full record — request digest, wall-clock
// timestamp, precise latency, four atomic slot stores — which measures
// in the low hundreds of nanoseconds and still performs zero heap
// allocations. SampleShift 0 records every decision (the right setting
// when each decision already rides an HTTP request); SampleShift k
// records every 2^k-th.
//
// Ring placement is derived, not allocated: the sampled ordinal
// k = n >> SampleShift maps to shard k % shards, slot (k / shards) %
// capacity. Concurrent writers therefore never contend on a ring
// cursor — distinct ordinals always address distinct slots — and a
// slot's sequence word (k+1, stored last) lets readers detect in-flight
// or overwritten slots instead of decoding torn data. All slot words
// are atomics, so snapshots race-cleanly overlap writes.
//
// Anomaly triggers — latency above the SLO threshold, a deny decided
// where the same request digest was last permitted, a snapshot
// generation change — set flag bits on the record and copy it into a
// separate events ring that only anomalies and audit events (coalition
// policy imports) overwrite, so the tail around a trigger survives long
// after the main ring has wrapped.
type Recorder struct {
	shift     uint8 // sample every 2^shift-th decision
	shardMask uint64
	slotMask  uint64
	shardBits uint8
	sloNs     int64

	shards []recShard

	// events holds audit events and anomaly copies (rare writes, own
	// cursor).
	evCursor atomic.Uint64
	events   []atomic.Uint64

	// lastK tracks the highest committed sampled ordinal (CAS-max).
	lastK atomic.Uint64
	// lastGen is the last observed snapshot generation (generation-change
	// trigger).
	lastGen atomic.Uint64
	// flipTable is a direct-mapped effect cache keyed by request digest:
	// entry = (digest >> 32) << 8 | effect. A Deny whose digest was last
	// seen as Permit marks the deny-after-permit anomaly.
	flipTable [256]atomic.Uint64

	// window, when set, receives every sampled latency (rolling-window
	// percentiles over the serving path).
	window *Windowed

	closed atomic.Bool

	// stats
	nRecorded  atomic.Int64
	nEvents    atomic.Int64
	nAnomalies [3]atomic.Int64 // indexed by anomaly bit position

	// names resolves policy-id hashes and truncated generations at decode
	// time; filled by NoteGeneration on the (rare) compile path.
	mu       sync.Mutex
	policies map[uint32]string
	gens     map[uint64]uint64 // low genBits -> latest full generation
}

type recShard struct {
	_     [8]uint64 // pad: keep shards on distinct cache lines
	slots []atomic.Uint64
}

// recWords is the slot width: sequence, timestamp, digest|policy hash,
// packed latency|generation|flags|effect.
const recWords = 4

// w3 packing: effect [0,4), flags [4,8), generation [8,28), latency
// nanoseconds [28,64) clamped.
const (
	recEffectBits = 4
	recFlagBits   = 4
	recGenBits    = 20
	recGenShift   = recEffectBits + recFlagBits
	recLatShift   = recGenShift + recGenBits
	recLatMax     = (uint64(1) << (64 - recLatShift)) - 1
	recGenMask    = (uint64(1) << recGenBits) - 1
)

// Anomaly flag bits (w3 flags field).
const (
	FlagLatencySLO = 1 << iota // latency at or above the SLO threshold
	FlagEffectFlip             // deny where this digest was last permitted
	FlagGenChange              // first record under a new snapshot generation
)

// Effect codes. 1–4 mirror the XACML decisions (Permit, Deny,
// NotApplicable, Indeterminate); 8+ are audit-event kinds.
const (
	EffectPermit        = 1
	EffectDeny          = 2
	EffectNotApplicable = 3
	EffectIndeterminate = 4

	EventImportAdopted  = 8
	EventImportRejected = 9
)

func effectName(e uint8) string {
	switch e {
	case EffectPermit:
		return "Permit"
	case EffectDeny:
		return "Deny"
	case EffectNotApplicable:
		return "NotApplicable"
	case EffectIndeterminate:
		return "Indeterminate"
	case EventImportAdopted:
		return "import-adopted"
	case EventImportRejected:
		return "import-rejected"
	default:
		return fmt.Sprintf("effect-%d", e)
	}
}

// RecorderOptions configures a Recorder. The zero value is usable:
// 4 shards of 1024 slots, every decision recorded, no latency SLO.
type RecorderOptions struct {
	// Shards is the number of slot stripes (rounded up to a power of
	// two, default 4). Consecutive sampled decisions land on distinct
	// shards, so concurrent writers touch distinct cache lines.
	Shards int
	// ShardCapacity is the number of records per shard (rounded up to a
	// power of two, default 1024).
	ShardCapacity int
	// SampleShift records every 2^SampleShift-th decision (0 = all).
	SampleShift uint8
	// LatencySLO, when positive, marks records at or above this latency
	// with FlagLatencySLO and copies them into the events ring.
	LatencySLO time.Duration
	// EventCapacity is the events-ring size (rounded up to a power of
	// two, default 256).
	EventCapacity int
	// Window, when set, receives every sampled latency observation.
	Window *Windowed
}

func ceilPow2(n, def int) uint64 {
	if n <= 0 {
		n = def
	}
	p := uint64(1)
	for p < uint64(n) {
		p <<= 1
	}
	return p
}

// NewRecorder builds a flight recorder.
func NewRecorder(opts RecorderOptions) *Recorder {
	shards := ceilPow2(opts.Shards, 4)
	capacity := ceilPow2(opts.ShardCapacity, 1024)
	events := ceilPow2(opts.EventCapacity, 256)
	r := &Recorder{
		shift:     opts.SampleShift,
		shardMask: shards - 1,
		slotMask:  capacity - 1,
		sloNs:     int64(opts.LatencySLO),
		shards:    make([]recShard, shards),
		events:    make([]atomic.Uint64, events*recWords),
		window:    opts.Window,
		policies:  make(map[uint32]string),
		gens:      make(map[uint64]uint64),
	}
	for b := shards; b > 1; b >>= 1 {
		r.shardBits++
	}
	for i := range r.shards {
		r.shards[i].slots = make([]atomic.Uint64, capacity*recWords)
	}
	return r
}

// SampleShift returns the configured sampling shift.
func (r *Recorder) SampleShift() uint8 { return r.shift }

// Sampled reports whether the n-th decision (a Counter.Bump value) is
// sampled into the ring. This is the entire non-sampled hot-path cost:
// one mask test.
func (r *Recorder) Sampled(n int64) bool {
	return uint64(n)&((1<<r.shift)-1) == 0
}

// SampledIn reports whether any decision ordinal in [first, last] is
// sampled — the batch-path pre-check.
func (r *Recorder) SampledIn(first, last int64) bool {
	mask := int64(1)<<r.shift - 1
	return (first+mask)&^mask <= last
}

// Close marks the recorder closed: subsequent commits and events are
// dropped. Recorded data stays readable. The recorder owns no
// goroutines; Close exists so holders have a defined detach point (and
// so tests can assert nothing leaks across open/use/close cycles).
func (r *Recorder) Close() { r.closed.Store(true) }

// Closed reports whether Close was called.
func (r *Recorder) Closed() bool { return r.closed.Load() }

// NoteGeneration registers a compiled generation's policy ids so record
// decoding can resolve policy-id hashes back to names. Called on the
// (rare) compile path; safe for concurrent use.
func (r *Recorder) NoteGeneration(gen uint64, ids []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, id := range ids {
		r.policies[fnv32a(id)] = id
	}
	if prev, ok := r.gens[gen&recGenMask]; !ok || gen > prev {
		r.gens[gen&recGenMask] = gen
	}
}

// Commit writes one decision record. n is the decision ordinal (the
// Counter.Bump value the caller used with Sampled), gen the snapshot
// generation, policyID the winning policy ("" when none), effect one of
// the Effect codes, digest the request attribute digest, t the decision
// start time, lat the measured latency. Zero heap allocations.
func (r *Recorder) Commit(n int64, gen uint64, policyID string, effect uint8, digest uint64, t time.Time, lat time.Duration) {
	if r.closed.Load() {
		return
	}
	flags := r.detectAnomalies(gen, effect, digest, lat)
	k := uint64(n) >> r.shift
	sh := &r.shards[k&r.shardMask]
	base := ((k >> r.shardBits) & r.slotMask) * recWords
	w1 := uint64(t.UnixNano())
	w2 := digest<<32 | uint64(fnv32a(policyID))
	w3 := packW3(lat, gen, flags, effect)
	// Sequence word last: a reader that sees w0 == k before and after
	// copying w1..w3 observed a fully committed, un-overwritten slot.
	// Counter.Bump values start at 1, so k >= 1 and 0 still means
	// "never written".
	sh.slots[base+1].Store(w1)
	sh.slots[base+2].Store(w2)
	sh.slots[base+3].Store(w3)
	sh.slots[base].Store(k)
	casMax(&r.lastK, k)
	r.nRecorded.Add(1)
	if flags != 0 {
		r.writeEvent(r.evCursor.Add(1), w1, w2, w3)
	}
	if r.window != nil {
		r.window.ObserveAtNs(int64(w1), int64(lat))
	}
}

// Event records an audit event (coalition policy import, operator
// action) into the events ring. kind is one of the Event* codes; d is
// the operation's duration (vet latency for imports).
func (r *Recorder) Event(kind uint8, policyID string, gen uint64, d time.Duration) {
	if r.closed.Load() {
		return
	}
	r.mu.Lock()
	r.policies[fnv32a(policyID)] = policyID
	if prev, ok := r.gens[gen&recGenMask]; !ok || gen > prev {
		r.gens[gen&recGenMask] = gen
	}
	r.mu.Unlock()
	w1 := uint64(time.Now().UnixNano())
	w2 := uint64(fnv32a(policyID))
	w3 := packW3(d, gen, 0, kind)
	seq := r.evCursor.Add(1)
	r.writeEvent(seq, w1, w2, w3)
	r.nEvents.Add(1)
}

func (r *Recorder) writeEvent(seq, w1, w2, w3 uint64) {
	base := ((seq - 1) & (uint64(len(r.events))/recWords - 1)) * recWords
	r.events[base+1].Store(w1)
	r.events[base+2].Store(w2)
	r.events[base+3].Store(w3)
	r.events[base].Store(seq)
}

func packW3(lat time.Duration, gen uint64, flags, effect uint8) uint64 {
	ln := uint64(lat)
	if lat < 0 {
		ln = 0
	}
	if ln > recLatMax {
		ln = recLatMax
	}
	return ln<<recLatShift | (gen&recGenMask)<<recGenShift |
		uint64(flags&0xf)<<recEffectBits | uint64(effect&0xf)
}

func (r *Recorder) detectAnomalies(gen uint64, effect uint8, digest uint64, lat time.Duration) uint8 {
	var flags uint8
	if r.sloNs > 0 && int64(lat) >= r.sloNs {
		flags |= FlagLatencySLO
		r.nAnomalies[0].Add(1)
	}
	entry := (digest>>32)<<8 | uint64(effect)
	prev := r.flipTable[digest&0xff].Swap(entry)
	if prev != 0 && prev>>8 == digest>>32 &&
		uint8(prev) == EffectPermit && effect == EffectDeny {
		flags |= FlagEffectFlip
		r.nAnomalies[1].Add(1)
	}
	if last := r.lastGen.Load(); last != gen {
		r.lastGen.Store(gen)
		if last != 0 {
			flags |= FlagGenChange
			r.nAnomalies[2].Add(1)
		}
	}
	return flags
}

func casMax(v *atomic.Uint64, x uint64) {
	for {
		old := v.Load()
		if x <= old || v.CompareAndSwap(old, x) {
			return
		}
	}
}

func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// AuditRecord is one decoded flight-recorder record.
type AuditRecord struct {
	// Seq is the record's sampled ordinal (the decision ordinal shifted
	// by the sample rate; monotonic — gaps mean the slots between were
	// overwritten or still in flight).
	Seq uint64 `json:"seq"`
	// Time is the decision's wall-clock start time.
	Time time.Time `json:"time"`
	// Digest is the request attribute digest (hex, order-independent
	// over the request's attributes) — equal digests mean equal-shaped
	// requests, which is what effect-flip detection keys on.
	Digest string `json:"digest,omitempty"`
	// PolicyID is the winning policy, resolved from the hash via
	// NoteGeneration when possible, else "hash:xxxxxxxx".
	PolicyID string `json:"policy_id,omitempty"`
	// Effect is the decision (or event kind).
	Effect string `json:"effect"`
	// Generation is the snapshot generation (resolved to the full value
	// when a noted generation matches, else the truncated 20-bit field).
	Generation uint64 `json:"generation"`
	// LatencyNs is the measured decision latency (event duration for
	// events).
	LatencyNs int64 `json:"latency_ns"`
	// Anomalies lists triggered anomaly flags.
	Anomalies []string `json:"anomalies,omitempty"`
}

// RecorderStats summarizes recorder activity.
type RecorderStats struct {
	Recorded    int64 `json:"recorded"`
	Events      int64 `json:"events"`
	LatencySLO  int64 `json:"latency_slo_breaches"`
	EffectFlips int64 `json:"effect_flips"`
	GenChanges  int64 `json:"generation_changes"`
	SampleShift uint8 `json:"sample_shift"`
}

// Stats returns recorder activity counters.
func (r *Recorder) Stats() RecorderStats {
	return RecorderStats{
		Recorded:    r.nRecorded.Load(),
		Events:      r.nEvents.Load(),
		LatencySLO:  r.nAnomalies[0].Load(),
		EffectFlips: r.nAnomalies[1].Load(),
		GenChanges:  r.nAnomalies[2].Load(),
		SampleShift: r.shift,
	}
}

// Tail decodes the most recent n committed records, oldest first.
// In-flight and overwritten slots are skipped, never torn.
func (r *Recorder) Tail(n int) []AuditRecord {
	if n <= 0 {
		return nil
	}
	top := r.lastK.Load() // highest committed sampled ordinal
	if top == 0 {
		return nil
	}
	span := uint64(n)
	window := (r.slotMask + 1) * (r.shardMask + 1)
	if span > window {
		span = window
	}
	lo := uint64(1)
	if top > span {
		lo = top - span + 1
	}
	out := make([]AuditRecord, 0, top-lo+1)
	for seq := lo; seq <= top; seq++ {
		k := seq
		sh := &r.shards[k&r.shardMask]
		base := ((k >> r.shardBits) & r.slotMask) * recWords
		if rec, ok := r.decodeSlot(sh.slots[base:base+recWords], seq); ok {
			out = append(out, rec)
		}
	}
	return out
}

// Events decodes the most recent n audit events and anomaly copies,
// oldest first.
func (r *Recorder) Events(n int) []AuditRecord {
	if n <= 0 {
		return nil
	}
	top := r.evCursor.Load()
	if top == 0 {
		return nil
	}
	span := uint64(n)
	if ringCap := uint64(len(r.events)) / recWords; span > ringCap {
		span = ringCap
	}
	lo := uint64(1)
	if top > span {
		lo = top - span + 1
	}
	out := make([]AuditRecord, 0, top-lo+1)
	for seq := lo; seq <= top; seq++ {
		base := ((seq - 1) & (uint64(len(r.events))/recWords - 1)) * recWords
		if rec, ok := r.decodeSlot(r.events[base:base+recWords], seq); ok {
			out = append(out, rec)
		}
	}
	return out
}

// decodeSlot reads one slot and validates its sequence word before and
// after the field copy, rejecting in-flight and overwritten slots.
func (r *Recorder) decodeSlot(words []atomic.Uint64, want uint64) (AuditRecord, bool) {
	if words[0].Load() != want {
		return AuditRecord{}, false
	}
	w1 := words[1].Load()
	w2 := words[2].Load()
	w3 := words[3].Load()
	if words[0].Load() != want {
		return AuditRecord{}, false
	}
	effect := uint8(w3 & (1<<recEffectBits - 1))
	flags := uint8(w3 >> recEffectBits & (1<<recFlagBits - 1))
	gen := w3 >> recGenShift & recGenMask
	lat := int64(w3 >> recLatShift)
	rec := AuditRecord{
		Seq:        want,
		Time:       time.Unix(0, int64(w1)),
		Effect:     effectName(effect),
		Generation: r.resolveGen(gen),
		LatencyNs:  lat,
	}
	if effect < EventImportAdopted {
		if digest := w2 >> 32; digest != 0 {
			rec.Digest = fmt.Sprintf("%08x", digest)
		}
	}
	if pid := uint32(w2); pid != fnv32a("") {
		rec.PolicyID = r.resolvePolicy(pid)
	}
	for bit, name := range []string{"latency-slo", "effect-flip", "generation-change"} {
		if flags&(1<<bit) != 0 {
			rec.Anomalies = append(rec.Anomalies, name)
		}
	}
	return rec, true
}

func (r *Recorder) resolvePolicy(hash uint32) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.policies[hash]; ok {
		return id
	}
	return fmt.Sprintf("hash:%08x", hash)
}

func (r *Recorder) resolveGen(low uint64) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if full, ok := r.gens[low]; ok {
		return full
	}
	return low
}

// AuditDump is the JSON document served by /audit and consumed by
// `agenptrace -audit`: the decoded decision tail, the event tail, and
// the recorder stats.
type AuditDump struct {
	Party      string        `json:"party,omitempty"`
	Generation uint64        `json:"generation,omitempty"`
	Stats      RecorderStats `json:"stats"`
	Records    []AuditRecord `json:"records"`
	Events     []AuditRecord `json:"events,omitempty"`
}

// Dump assembles an AuditDump with the most recent n records and
// events.
func (r *Recorder) Dump(n int) AuditDump {
	return AuditDump{
		Stats:   r.Stats(),
		Records: r.Tail(n),
		Events:  r.Events(n),
	}
}
