package obs

import (
	"testing"
	"time"
)

func TestBucketQuantileEdges(t *testing.T) {
	var b [histBuckets]int64
	if got := bucketQuantile(b[:], 0, 99); got != 0 {
		t.Fatalf("empty histogram p99: got %d, want 0", got)
	}
	// Single observation in bucket 1 (value 1ns): every quantile is 1.
	b[1] = 1
	for _, q := range []int64{50, 95, 99} {
		if got := bucketQuantile(b[:], 1, q); got != 1 {
			t.Fatalf("p%d of single 1ns obs: got %d", q, got)
		}
	}
}

func TestBucketQuantileInterpolation(t *testing.T) {
	var b [histBuckets]int64
	// 100 observations all in bucket 11: [1024, 2047].
	b[11] = 100
	p50 := bucketQuantile(b[:], 100, 50)
	p99 := bucketQuantile(b[:], 100, 99)
	if p50 < bucketLower(11) || p50 > bucketUpper(11) {
		t.Fatalf("p50 outside bucket bounds: %d", p50)
	}
	if p99 < bucketLower(11) || p99 > bucketUpper(11) {
		t.Fatalf("p99 outside bucket bounds: %d", p99)
	}
	if p99 <= p50 {
		t.Fatalf("interpolation not monotone inside bucket: p50=%d p99=%d", p50, p99)
	}
}

func TestBucketQuantileSplit(t *testing.T) {
	var b [histBuckets]int64
	// 50 observations around 1µs (bucket 10: 512..1023) and 50 around
	// 1ms (bucket 20: 524288..1048575).
	b[10] = 50
	b[20] = 50
	p50 := bucketQuantile(b[:], 100, 50)
	p95 := bucketQuantile(b[:], 100, 95)
	if p50 > bucketUpper(10) {
		t.Fatalf("p50 should stay in the low bucket: %d", p50)
	}
	if p95 < bucketLower(20) {
		t.Fatalf("p95 should land in the high bucket: %d", p95)
	}
}

func TestHistogramSnapshotQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(time.Microsecond)
	}
	h.Observe(100 * time.Millisecond)
	s := h.snapshot()
	if s.P50Ns < int64(time.Microsecond)/2 || s.P50Ns > 2*int64(time.Microsecond) {
		t.Fatalf("p50 = %dns, want about 1µs", s.P50Ns)
	}
	if s.P99Ns > 2*int64(time.Microsecond) {
		t.Fatalf("p99 = %dns, should not reach the outlier at rank 99", s.P99Ns)
	}
	if s.MaxNs < int64(100*time.Millisecond) {
		t.Fatalf("max lost: %d", s.MaxNs)
	}
	// Quantiles must never exceed the observed max's bucket bound.
	if s.P99Ns > s.MaxNs {
		t.Fatalf("p99 %d exceeds max %d", s.P99Ns, s.MaxNs)
	}
}
