package obs

import (
	"sync/atomic"
	"time"
)

// Windowed is a set of rolling-window duration histograms: the same
// power-of-two buckets as Histogram, but kept per time slice in a small
// ring so snapshots report percentiles over the last 10 seconds, last
// minute, and last 5 minutes instead of process lifetime.
//
// Each window is a ring of slices; an observation lands in the slice
// covering its timestamp, and stale slices are lazily reset in place
// when their slot comes around again (epoch CAS — the winner zeroes the
// slice; a concurrent observation racing the reset can lose at most
// itself, never corrupt a count). Observe is lock-free and
// allocation-free; it costs a handful of atomic adds per window, which
// is fine for the paths that use it (request handlers and sampled
// flight-recorder commits — not the raw decision hot path).
//
// An optional SLO threshold turns the window into a burn counter:
// observations at or above the threshold are counted per slice, so
// snapshots report how many requests breached the SLO inside each
// window alongside the lifetime total.
type Windowed struct {
	sloNs   atomic.Int64
	windows [len(windowSpecs)]winRing
	// lifetime breach counter (burn across restarts of the window).
	breaches atomic.Int64
}

// windowSpec fixes the reporting windows: name, slice duration, slice
// count. Slices overshoot the nominal window by one so a full window is
// always covered even mid-slice.
type windowSpec struct {
	name    string
	sliceNs int64
	slices  int
}

var windowSpecs = [3]windowSpec{
	{"10s", int64(time.Second), 11},
	{"1m", 5 * int64(time.Second), 13},
	{"5m", 20 * int64(time.Second), 16},
}

// winSlice is one time slice: an epoch (the absolute slice index it
// currently holds) plus a compact histogram.
type winSlice struct {
	epoch    atomic.Int64
	count    atomic.Int64
	sum      atomic.Int64
	max      atomic.Int64
	breached atomic.Int64
	buckets  [histBuckets]atomic.Int64
}

type winRing struct {
	slices []winSlice
}

func newWindowed() *Windowed {
	w := &Windowed{}
	for i, spec := range windowSpecs {
		w.windows[i].slices = make([]winSlice, spec.slices)
	}
	return w
}

// SetSLO installs the burn threshold: observations at or above it count
// as breaches. Zero disables breach counting.
func (w *Windowed) SetSLO(threshold time.Duration) { w.sloNs.Store(int64(threshold)) }

// SLO returns the current burn threshold.
func (w *Windowed) SLO() time.Duration { return time.Duration(w.sloNs.Load()) }

// Observe records one duration at the current wall-clock time.
func (w *Windowed) Observe(d time.Duration) {
	w.ObserveAtNs(time.Now().UnixNano(), int64(d))
}

// ObserveSince records the elapsed time since t0.
func (w *Windowed) ObserveSince(t0 time.Time) {
	w.ObserveAtNs(t0.UnixNano(), int64(time.Since(t0)))
}

// ObserveAtNs records a duration of durNs nanoseconds observed at
// wall-clock nowNs. The explicit timestamp keeps callers that already
// hold one (the flight recorder) from paying a second clock read, and
// makes window decay deterministic under test.
func (w *Windowed) ObserveAtNs(nowNs, durNs int64) {
	if durNs < 0 {
		durNs = 0
	}
	slo := w.sloNs.Load()
	breach := slo > 0 && durNs >= slo
	if breach {
		w.breaches.Add(1)
	}
	for i := range w.windows {
		spec := &windowSpecs[i]
		idx := nowNs / spec.sliceNs
		sl := &w.windows[i].slices[int(idx)%spec.slices]
		for {
			e := sl.epoch.Load()
			if e == idx {
				break
			}
			if e > idx {
				// Clock skew or a very stale observation: drop rather
				// than pollute a newer slice.
				sl = nil
				break
			}
			if sl.epoch.CompareAndSwap(e, idx) {
				// We won the rotation: zero the slice in place.
				// Observations racing this reset may be partially lost;
				// a slice boundary loses at most a handful of samples.
				sl.count.Store(0)
				sl.sum.Store(0)
				sl.max.Store(0)
				sl.breached.Store(0)
				for b := range sl.buckets {
					sl.buckets[b].Store(0)
				}
				break
			}
		}
		if sl == nil {
			continue
		}
		sl.count.Add(1)
		sl.sum.Add(durNs)
		casMaxI64(&sl.max, durNs)
		sl.buckets[bucketIndex(durNs)].Add(1)
		if breach {
			sl.breached.Add(1)
		}
	}
}

func casMaxI64(v *atomic.Int64, x int64) {
	for {
		old := v.Load()
		if x <= old || v.CompareAndSwap(old, x) {
			return
		}
	}
}

// WindowSnapshot is the aggregate over one rolling window.
type WindowSnapshot struct {
	Count   int64             `json:"count"`
	SumNs   int64             `json:"sum_ns"`
	MaxNs   int64             `json:"max_ns"`
	P50Ns   int64             `json:"p50_ns"`
	P95Ns   int64             `json:"p95_ns"`
	P99Ns   int64             `json:"p99_ns"`
	Breach  int64             `json:"slo_breaches,omitempty"`
	SLONs   int64             `json:"slo_ns,omitempty"`
	WinNs   int64             `json:"window_ns"`
	Buckets []HistogramBucket `json:"-"`
}

// WindowedSnapshot maps window name ("10s", "1m", "5m") to its
// aggregate.
type WindowedSnapshot map[string]WindowSnapshot

// Snapshot aggregates every window at the current wall-clock time.
func (w *Windowed) Snapshot() WindowedSnapshot {
	return w.SnapshotAtNs(time.Now().UnixNano())
}

// SnapshotAtNs aggregates every window as of nowNs: slices whose epoch
// falls inside the window are summed, everything older is decayed out.
func (w *Windowed) SnapshotAtNs(nowNs int64) WindowedSnapshot {
	out := make(WindowedSnapshot, len(windowSpecs))
	slo := w.sloNs.Load()
	for i := range w.windows {
		spec := &windowSpecs[i]
		idx := nowNs / spec.sliceNs
		// The window covers the current (partial) slice plus enough
		// whole slices to span the nominal duration.
		nominal := int64(spec.slices-1) * spec.sliceNs
		lo := idx - int64(spec.slices) + 1
		var agg WindowSnapshot
		agg.WinNs = nominal
		agg.SLONs = slo
		var buckets [histBuckets]int64
		for s := range w.windows[i].slices {
			sl := &w.windows[i].slices[s]
			e := sl.epoch.Load()
			if e < lo || e > idx {
				continue
			}
			agg.Count += sl.count.Load()
			agg.SumNs += sl.sum.Load()
			agg.Breach += sl.breached.Load()
			if m := sl.max.Load(); m > agg.MaxNs {
				agg.MaxNs = m
			}
			for b := range buckets {
				buckets[b] += sl.buckets[b].Load()
			}
		}
		var inBuckets int64 // may lag Count under concurrent observers
		for _, n := range buckets {
			inBuckets += n
		}
		agg.P50Ns = bucketQuantile(buckets[:], inBuckets, 50)
		agg.P95Ns = bucketQuantile(buckets[:], inBuckets, 95)
		agg.P99Ns = bucketQuantile(buckets[:], inBuckets, 99)
		for b, n := range buckets {
			if n != 0 {
				agg.Buckets = append(agg.Buckets, HistogramBucket{UpperNs: bucketUpper(b), Count: n})
			}
		}
		out[spec.name] = agg
	}
	return out
}

// LifetimeBreaches returns the total SLO breaches since construction.
func (w *Windowed) LifetimeBreaches() int64 { return w.breaches.Load() }
