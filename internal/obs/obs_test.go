package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines and
// checks the total (run under -race in CI).
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

// TestHistogramConcurrent checks count/sum under concurrent observers
// and that every observation lands in exactly one bucket.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d")
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	snap := h.snapshot()
	if snap.Count != workers*per {
		t.Fatalf("count = %d, want %d", snap.Count, workers*per)
	}
	var inBuckets int64
	for _, b := range snap.Buckets {
		inBuckets += b.Count
	}
	if inBuckets != snap.Count {
		t.Fatalf("bucket sum %d != count %d", inBuckets, snap.Count)
	}
	if snap.MaxNs != (workers-1)*1000+per-1 {
		t.Fatalf("max = %d", snap.MaxNs)
	}
}

func TestHistogramBucketBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d")
	h.Observe(0)          // bucket 0, upper 0
	h.Observe(1)          // bucket 1, upper 1
	h.Observe(7)          // bucket 3, upper 7
	h.Observe(1024)       // bucket 11, upper 2047
	h.Observe(-time.Hour) // clamps to 0
	snap := h.snapshot()
	want := []HistogramBucket{
		{UpperNs: 0, Count: 2},
		{UpperNs: 1, Count: 1},
		{UpperNs: 7, Count: 1},
		{UpperNs: 2047, Count: 1},
	}
	if len(snap.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", snap.Buckets)
	}
	for i, b := range want {
		if snap.Buckets[i] != b {
			t.Errorf("bucket[%d] = %+v, want %+v", i, snap.Buckets[i], b)
		}
	}
}

// TestSnapshotDeterministic: two registries fed the same operations
// marshal to identical JSON bytes.
func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Register in different orders; snapshot must not care.
		names := []string{"z.last", "a.first", "m.middle"}
		for _, n := range names {
			r.Counter(n).Add(7)
		}
		r.Gauge("g.depth").Set(3)
		r.Histogram("h.dur").Observe(1500 * time.Nanosecond)
		r.Histogram("h.dur").Observe(300 * time.Microsecond)
		return r
	}
	r2 := NewRegistry()
	r2.Histogram("h.dur").Observe(300 * time.Microsecond)
	r2.Gauge("g.depth").Set(3)
	for _, n := range []string{"a.first", "m.middle", "z.last"} {
		r2.Counter(n).Add(7)
	}
	r2.Histogram("h.dur").Observe(1500 * time.Nanosecond)
	// N.B. r2 observed the histogram in a different order; buckets and
	// sums are order-independent, max is too.
	var b1, b2 bytes.Buffer
	if err := build().Snapshot().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r2.Snapshot().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", b1.String(), b2.String())
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(42)
	r.Histogram("h").Observe(time.Millisecond)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["c"] != 42 {
		t.Fatalf("counter c = %d", s.Counters["c"])
	}
	if s.Histograms["h"].Count != 1 {
		t.Fatalf("histogram h = %+v", s.Histograms["h"])
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	c.Add(5)
	h.Observe(time.Second)
	r.Reset()
	if c.Value() != 0 {
		t.Fatalf("counter after reset = %d", c.Value())
	}
	if snap := h.snapshot(); snap.Count != 0 || snap.SumNs != 0 || snap.MaxNs != 0 || len(snap.Buckets) != 0 {
		t.Fatalf("histogram after reset = %+v", snap)
	}
	// Pointers stay live: recording after reset works.
	c.Inc()
	if r.Snapshot().Counters["c"] != 1 {
		t.Fatal("counter pointer dead after reset")
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.two").Add(2)
	r.Counter("a.one").Add(1)
	r.Gauge("g").Set(9)
	r.Histogram("h").Observe(2 * time.Millisecond)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	ai := strings.Index(out, "a.one")
	bi := strings.Index(out, "b.two")
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("counters missing or unsorted:\n%s", out)
	}
	if !strings.Contains(out, "count=1") {
		t.Fatalf("histogram line missing:\n%s", out)
	}
}

func TestGetOrCreateReturnsSame(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter not get-or-create")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Fatal("Gauge not get-or-create")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Fatal("Histogram not get-or-create")
	}
}

// TestNoopSinkZeroAllocs is the overhead contract of the tracing layer:
// with no sink installed, the full span lifecycle allocates nothing.
func TestNoopSinkZeroAllocs(t *testing.T) {
	SetSink(nil)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := StartSpan("hot.path")
		sp.SetAttr("k", "v")
		child := sp.Child("inner")
		child.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span lifecycle allocates %.1f/op, want 0", allocs)
	}
}

// TestCounterZeroAllocs: recording on a pre-declared counter and
// histogram allocates nothing.
func TestCounterZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		h.Observe(1234)
	})
	if allocs != 0 {
		t.Fatalf("metric recording allocates %.1f/op, want 0", allocs)
	}
}

func TestSpanLifecycle(t *testing.T) {
	var sink CollectorSink
	SetSink(&sink)
	defer SetSink(nil)
	sp := StartSpan("outer")
	sp.SetAttr("k", "v")
	child := sp.Child("inner")
	child.End()
	sp.End()
	spans := sink.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	inner, outer := spans[0], spans[1]
	if inner.Name != "inner" || outer.Name != "outer" {
		t.Fatalf("span order: %q then %q", inner.Name, outer.Name)
	}
	if inner.Parent != outer.ID {
		t.Fatalf("inner.Parent = %d, outer.ID = %d", inner.Parent, outer.ID)
	}
	if len(outer.Attrs) != 1 || outer.Attrs[0] != (Attr{K: "k", V: "v"}) {
		t.Fatalf("outer attrs = %+v", outer.Attrs)
	}
	if outer.DurNs < 0 {
		t.Fatalf("outer duration = %d", outer.DurNs)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	SetSink(s)
	defer SetSink(nil)
	sp := StartSpan("op")
	sp.End()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines", len(lines))
	}
	var d SpanData
	if err := json.Unmarshal([]byte(lines[0]), &d); err != nil {
		t.Fatal(err)
	}
	if d.Name != "op" || d.ID == 0 {
		t.Fatalf("decoded span = %+v", d)
	}
}

// BenchmarkCounterAdd is the hot-path cost of one recorded event.
func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve is the hot-path cost of one timing sample.
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}

// BenchmarkNoopSpan is the disabled-tracing overhead: the acceptance
// bar is 0 allocs/op.
func BenchmarkNoopSpan(b *testing.B) {
	SetSink(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpan("op")
		sp.SetAttr("k", "v")
		sp.End()
	}
}
