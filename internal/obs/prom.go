package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) generated straight from a
// registry snapshot, so the same numbers behind the JSON /metrics
// endpoint can be scraped by any Prometheus-compatible collector
// without adding a client-library dependency.
//
// Mapping:
//
//   - counters  -> <name>_total (TYPE counter)
//   - gauges    -> <name> (TYPE gauge)
//   - histograms -> <name>_seconds histogram: cumulative le buckets in
//     seconds (power-of-two nanosecond bounds converted), +Inf, _sum,
//     _count
//   - windows   -> <name>_window_* gauges labelled {window="10s"|"1m"|"5m"}:
//     count, p50/p95/p99 seconds, slo_breaches
//
// Dotted registry names become underscore-separated Prometheus names
// ("engine.decisions" -> "engine_decisions_total"); any character
// outside [a-zA-Z0-9_] maps to '_'.

// promName sanitizes a registry metric name into a valid Prometheus
// metric name.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promSeconds formats a nanosecond count as seconds with enough
// precision to round-trip the integer nanoseconds.
func promSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format. Output is deterministic: metric families are sorted by name.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name) + "_seconds"
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promSeconds(b.UpperNs), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promSeconds(h.SumNs), pn, h.Count); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Windows {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name) + "_window"
		// Samples of one metric family must be contiguous, so emit
		// suffix-major: each family's TYPE line, then one sample per
		// window label.
		families := [...]struct {
			suffix string
			value  func(WindowSnapshot) string
		}{
			{"count", func(w WindowSnapshot) string { return strconv.FormatInt(w.Count, 10) }},
			{"p50_seconds", func(w WindowSnapshot) string { return promSeconds(w.P50Ns) }},
			{"p95_seconds", func(w WindowSnapshot) string { return promSeconds(w.P95Ns) }},
			{"p99_seconds", func(w WindowSnapshot) string { return promSeconds(w.P99Ns) }},
			{"slo_breaches", func(w WindowSnapshot) string { return strconv.FormatInt(w.Breach, 10) }},
		}
		for _, fam := range families {
			full := pn + "_" + fam.suffix
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", full); err != nil {
				return err
			}
			for _, spec := range windowSpecs {
				win, ok := s.Windows[name][spec.name]
				if !ok {
					continue
				}
				if _, err := fmt.Fprintf(w, "%s{window=%q} %s\n", full, spec.name, fam.value(win)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
