package obs

import (
	"expvar"
	"net/http"
)

// getOnly wraps a handler to reject every method except GET (and HEAD,
// which net/http serves as GET-without-body) with 405 and an Allow
// header.
func getOnly(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, req)
	})
}

// Handler serves the registry snapshot — the /metrics endpoint of the
// coalition daemon. The default rendering is indented JSON;
// `?format=prom` switches to Prometheus text exposition.
func (r *Registry) Handler() http.Handler {
	return getOnly(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = r.Snapshot().WritePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.Snapshot().WriteJSON(w)
	})
}

// PromHandler serves the registry snapshot in Prometheus text
// exposition format unconditionally — the /metrics/prom endpoint, for
// scrapers that can't pass query parameters.
func (r *Registry) PromHandler() http.Handler {
	return getOnly(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Snapshot().WritePrometheus(w)
	})
}

// PublishExpvar exposes the registry under the given expvar name (one
// Var whose String() is the JSON snapshot), making the metrics visible
// on /debug/vars alongside the runtime's memstats. Publishing the same
// name twice panics (expvar semantics), so call once per process.
func (r *Registry) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any {
		return r.Snapshot()
	}))
}
