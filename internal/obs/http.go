package obs

import (
	"expvar"
	"net/http"
)

// Handler serves the registry snapshot as indented JSON — the /metrics
// endpoint of the coalition daemon.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.Snapshot().WriteJSON(w)
	})
}

// PublishExpvar exposes the registry under the given expvar name (one
// Var whose String() is the JSON snapshot), making the metrics visible
// on /debug/vars alongside the runtime's memstats. Publishing the same
// name twice panics (expvar semantics), so call once per process.
func (r *Registry) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any {
		return r.Snapshot()
	}))
}
