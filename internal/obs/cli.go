package obs

import (
	"fmt"
	"os"
)

// StartTrace routes span emission to a JSONL file at path — the backing
// for a CLI's -trace flag. The returned stop function detaches the sink
// and closes the file; call it before the process exits so the last
// spans are flushed.
func StartTrace(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: trace file: %w", err)
	}
	SetSink(NewJSONLSink(f))
	return func() error {
		SetSink(nil)
		return f.Close()
	}, nil
}
