// Package obs is the dependency-free telemetry layer of the framework:
// atomic counters, gauges, duration histograms with fixed log-scale
// buckets, and lightweight span tracing with a pluggable sink.
//
// Design goals, in order:
//
//  1. Hot paths pay at most one atomic add per recorded event, and
//     exactly zero allocations. Instrumented packages declare their
//     metrics once as package variables (obs.C/obs.G/obs.H against the
//     Default registry) and poke them directly — no name lookup, no
//     map access, no formatting on the recording path.
//  2. Tracing is off by default: with no sink installed, StartSpan
//     returns an inert zero Span and every span method is a no-op
//     (verified at 0 allocs/op by the package tests).
//  3. Snapshots are deterministic: Registry.Snapshot marshals to the
//     same JSON bytes for the same sequence of recorded values, so
//     tests and the /metrics endpoint can assert on exact content.
//
// The package deliberately depends only on the standard library.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Bump increments the counter by one and returns the new value — the
// same single atomic add as Inc, but usable as a sampling cadence by
// callers (the decision engine drives the flight recorder's 1-in-2^k
// sampling off the decisions counter it already maintains).
func (c *Counter) Bump() int64 { return c.v.Add(1) }

// BumpN adds n and returns the new value (batch cadence).
func (c *Counter) BumpN(n int64) int64 { return c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, worker count).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count: bucket i holds observations of
// d nanoseconds with bits.Len64(d) == i, i.e. d in [2^(i-1), 2^i).
// 64 buckets cover every possible time.Duration.
const histBuckets = 64

// Histogram is a duration histogram over fixed power-of-two buckets.
// Observe is one atomic add per bucket plus count and sum — cheap
// enough for per-operation timing of solver and learner stages.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(ns))].Add(1)
}

// ObserveSince records the elapsed time since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// SumNs returns the total observed nanoseconds.
func (h *Histogram) SumNs() int64 { return h.sum.Load() }

// HistogramBucket is one non-empty bucket of a histogram snapshot:
// Count observations were at most UpperNs nanoseconds (and above the
// previous bucket's bound).
type HistogramBucket struct {
	UpperNs int64 `json:"upper_ns"`
	Count   int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time view of a histogram. P50/P95/P99
// are estimated by linear interpolation inside the matching
// power-of-two bucket, so JSON and text output carry usable quantiles
// without post-processing; the estimate is deterministic for a given
// set of bucket counts.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	SumNs   int64             `json:"sum_ns"`
	AvgNs   int64             `json:"avg_ns"`
	MaxNs   int64             `json:"max_ns"`
	P50Ns   int64             `json:"p50_ns"`
	P95Ns   int64             `json:"p95_ns"`
	P99Ns   int64             `json:"p99_ns"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// bucketIndex returns the bucket for a non-negative duration.
func bucketIndex(ns int64) int { return bits.Len64(uint64(ns)) }

// bucketUpper returns bucket i's inclusive upper bound in nanoseconds.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	return int64(1)<<i - 1
}

// bucketLower returns bucket i's inclusive lower bound in nanoseconds.
func bucketLower(i int) int64 {
	if i == 0 {
		return 0
	}
	return int64(1) << (i - 1)
}

// bucketQuantile estimates the q-th percentile (q in [0,100]) from
// power-of-two bucket counts by locating the bucket holding the target
// rank and interpolating linearly inside its bounds. Deterministic and
// integer-only.
func bucketQuantile(buckets []int64, total int64, q int64) int64 {
	if total <= 0 {
		return 0
	}
	rank := (total*q + 99) / 100 // ceil(total*q/100)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range buckets {
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := bucketLower(i), bucketUpper(i)
			// Position of the target rank inside this bucket, in
			// (0, 1], scaled over the bucket's value range.
			return lo + (hi-lo)*(rank-cum-1)/n
		}
		cum += n
	}
	return bucketUpper(len(buckets) - 1)
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		SumNs: h.sum.Load(),
		MaxNs: h.max.Load(),
	}
	if s.Count > 0 {
		s.AvgNs = s.SumNs / s.Count
	}
	var counts [histBuckets]int64
	var inBuckets int64 // may lag Count under concurrent observers
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		counts[i] = n
		inBuckets += n
		s.Buckets = append(s.Buckets, HistogramBucket{UpperNs: bucketUpper(i), Count: n})
	}
	s.P50Ns = bucketQuantile(counts[:], inBuckets, 50)
	s.P95Ns = bucketQuantile(counts[:], inBuckets, 95)
	s.P99Ns = bucketQuantile(counts[:], inBuckets, 99)
	return s
}

// Registry is a named collection of metrics. The zero value is not
// usable; call NewRegistry. Metric constructors are get-or-create and
// safe for concurrent use; recording on returned metrics never touches
// the registry lock.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	windows  map[string]*Windowed
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		windows:  make(map[string]*Windowed),
	}
}

// Default is the process-wide registry every instrumented package
// records into.
var Default = NewRegistry()

// Counter returns the named counter, creating it at zero on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it empty on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Window returns the named rolling-window histogram, creating it empty
// on first use.
func (r *Registry) Window(name string) *Windowed {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.windows[name]
	if !ok {
		w = newWindowed()
		r.windows[name] = w
	}
	return w
}

// C returns a counter from the Default registry (package-var idiom:
// declare once, record forever without lookups).
func C(name string) *Counter { return Default.Counter(name) }

// G returns a gauge from the Default registry.
func G(name string) *Gauge { return Default.Gauge(name) }

// H returns a histogram from the Default registry.
func H(name string) *Histogram { return Default.Histogram(name) }

// W returns a rolling-window histogram from the Default registry.
func W(name string) *Windowed { return Default.Window(name) }

// Snapshot is a point-in-time view of every metric in a registry.
// encoding/json sorts map keys, so marshalling is deterministic.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// Windows carries rolling-window aggregates (absent when no
	// windowed metric is registered, keeping pre-window snapshots
	// byte-identical).
	Windows map[string]WindowedSnapshot `json:"windows,omitempty"`
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	return r.snapshotAt(time.Now().UnixNano())
}

// SnapshotAtNs captures the registry with rolling windows evaluated at
// the given wall-clock time (deterministic window decay in tests).
func (r *Registry) SnapshotAtNs(nowNs int64) Snapshot {
	return r.snapshotAt(nowNs)
}

func (r *Registry) snapshotAt(nowNs int64) Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	if len(r.windows) > 0 {
		s.Windows = make(map[string]WindowedSnapshot, len(r.windows))
		for name, w := range r.windows {
			s.Windows[name] = w.SnapshotAtNs(nowNs)
		}
	}
	return s
}

// Reset zeroes every registered metric in place (registered names and
// metric pointers survive). Intended for tests and benchmarks that
// assert on exact deltas.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.count.Store(0)
		h.sum.Store(0)
		h.max.Store(0)
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
	}
	for _, w := range r.windows {
		w.breaches.Store(0)
		for i := range w.windows {
			for s := range w.windows[i].slices {
				sl := &w.windows[i].slices[s]
				sl.epoch.Store(0)
				sl.count.Store(0)
				sl.sum.Store(0)
				sl.max.Store(0)
				sl.breached.Store(0)
				for b := range sl.buckets {
					sl.buckets[b].Store(0)
				}
			}
		}
	}
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes the snapshot as sorted "name value" lines, with
// histograms rendered as count/avg/max — the -stats output format of
// the CLIs.
func (s Snapshot) WriteText(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%-44s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%-44s %d\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "%-44s count=%d avg=%s max=%s\n",
			name, h.Count, time.Duration(h.AvgNs), time.Duration(h.MaxNs)); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Windows {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, span := range windowSpecs {
			win, ok := s.Windows[name][span.name]
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "%-44s count=%d p50=%s p99=%s breaches=%d\n",
				name+"["+span.name+"]", win.Count,
				time.Duration(win.P50Ns), time.Duration(win.P99Ns), win.Breach); err != nil {
				return err
			}
		}
	}
	return nil
}
