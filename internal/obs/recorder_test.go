package obs

import (
	"encoding/json"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRecorderCommitDecode(t *testing.T) {
	r := NewRecorder(RecorderOptions{Shards: 2, ShardCapacity: 16})
	r.NoteGeneration(7, []string{"p-allow", "p-deny"})

	base := time.Unix(1700000000, 0)
	r.Commit(1, 7, "p-allow", EffectPermit, 0xabcd1234, base, 150*time.Nanosecond)
	r.Commit(2, 7, "p-deny", EffectDeny, 0x5678, base.Add(time.Millisecond), 90*time.Nanosecond)
	r.Commit(3, 7, "", EffectNotApplicable, 0x9, base.Add(2*time.Millisecond), 40*time.Nanosecond)

	tail := r.Tail(10)
	if len(tail) != 3 {
		t.Fatalf("Tail: got %d records, want 3", len(tail))
	}
	first := tail[0]
	if first.Seq != 1 || first.PolicyID != "p-allow" || first.Effect != "Permit" {
		t.Fatalf("record 1 decoded wrong: %+v", first)
	}
	if first.Generation != 7 {
		t.Fatalf("generation: got %d, want 7", first.Generation)
	}
	if first.LatencyNs != 150 {
		t.Fatalf("latency: got %d, want 150", first.LatencyNs)
	}
	if !first.Time.Equal(base) {
		t.Fatalf("time: got %v, want %v", first.Time, base)
	}
	if first.Digest == "" {
		t.Fatalf("digest missing on decision record")
	}
	if tail[2].PolicyID != "" {
		t.Fatalf("no-policy record should omit policy_id, got %q", tail[2].PolicyID)
	}
	if tail[2].Effect != "NotApplicable" {
		t.Fatalf("effect: got %q", tail[2].Effect)
	}

	if st := r.Stats(); st.Recorded != 3 {
		t.Fatalf("stats recorded: got %d, want 3", st.Recorded)
	}
}

func TestRecorderUnknownPolicyHash(t *testing.T) {
	r := NewRecorder(RecorderOptions{})
	r.Commit(1, 1, "never-noted", EffectPermit, 1, time.Now(), time.Microsecond)
	tail := r.Tail(1)
	if len(tail) != 1 {
		t.Fatalf("Tail: got %d records", len(tail))
	}
	if want := "hash:"; len(tail[0].PolicyID) != 13 || tail[0].PolicyID[:5] != want {
		t.Fatalf("unresolved policy should decode as hash:xxxxxxxx, got %q", tail[0].PolicyID)
	}
}

func TestRecorderSampling(t *testing.T) {
	r := NewRecorder(RecorderOptions{SampleShift: 2})
	var sampled []int64
	for n := int64(1); n <= 16; n++ {
		if r.Sampled(n) {
			sampled = append(sampled, n)
		}
	}
	want := []int64{4, 8, 12, 16}
	if len(sampled) != len(want) {
		t.Fatalf("sampled %v, want %v", sampled, want)
	}
	for i := range want {
		if sampled[i] != want[i] {
			t.Fatalf("sampled %v, want %v", sampled, want)
		}
	}
	// Batch pre-check: [5,7] contains no multiple of 4, [5,8] does.
	if r.SampledIn(5, 7) {
		t.Fatalf("SampledIn(5,7) should be false at shift 2")
	}
	if !r.SampledIn(5, 8) {
		t.Fatalf("SampledIn(5,8) should be true at shift 2")
	}
	// Shift 0 samples everything.
	r0 := NewRecorder(RecorderOptions{})
	for n := int64(1); n <= 5; n++ {
		if !r0.Sampled(n) {
			t.Fatalf("shift 0 must sample every n, missed %d", n)
		}
	}
}

func TestRecorderAnomalies(t *testing.T) {
	r := NewRecorder(RecorderOptions{LatencySLO: time.Millisecond})
	now := time.Now()

	// Latency SLO breach.
	r.Commit(1, 1, "p", EffectPermit, 0x11, now, 2*time.Millisecond)
	// Effect flip: same digest, Permit then Deny.
	r.Commit(2, 1, "p", EffectPermit, 0x22, now, time.Microsecond)
	r.Commit(3, 1, "p", EffectDeny, 0x22, now, time.Microsecond)
	// Generation change.
	r.Commit(4, 2, "p", EffectPermit, 0x33, now, time.Microsecond)

	tail := r.Tail(10)
	if len(tail) != 4 {
		t.Fatalf("Tail: got %d records", len(tail))
	}
	hasAnomaly := func(rec AuditRecord, name string) bool {
		for _, a := range rec.Anomalies {
			if a == name {
				return true
			}
		}
		return false
	}
	if !hasAnomaly(tail[0], "latency-slo") {
		t.Fatalf("record 1 should carry latency-slo, got %v", tail[0].Anomalies)
	}
	if hasAnomaly(tail[1], "effect-flip") {
		t.Fatalf("first permit must not flip, got %v", tail[1].Anomalies)
	}
	if !hasAnomaly(tail[2], "effect-flip") {
		t.Fatalf("deny-after-permit should carry effect-flip, got %v", tail[2].Anomalies)
	}
	if !hasAnomaly(tail[3], "generation-change") {
		t.Fatalf("record 4 should carry generation-change, got %v", tail[3].Anomalies)
	}

	st := r.Stats()
	if st.LatencySLO != 1 || st.EffectFlips != 1 || st.GenChanges != 1 {
		t.Fatalf("anomaly stats wrong: %+v", st)
	}

	// Anomalous records are copied into the events ring, so they survive
	// main-ring wraps.
	evs := r.Events(10)
	if len(evs) != 3 {
		t.Fatalf("events ring should hold 3 anomaly copies, got %d", len(evs))
	}
}

func TestRecorderImportEvents(t *testing.T) {
	r := NewRecorder(RecorderOptions{})
	r.Event(EventImportAdopted, "shared-pol", 5, 3*time.Microsecond)
	r.Event(EventImportRejected, "bad-pol", 5, time.Microsecond)

	evs := r.Events(10)
	if len(evs) != 2 {
		t.Fatalf("Events: got %d, want 2", len(evs))
	}
	if evs[0].Effect != "import-adopted" || evs[0].PolicyID != "shared-pol" {
		t.Fatalf("event 1 decoded wrong: %+v", evs[0])
	}
	if evs[1].Effect != "import-rejected" || evs[1].PolicyID != "bad-pol" {
		t.Fatalf("event 2 decoded wrong: %+v", evs[1])
	}
	if evs[0].Generation != 5 {
		t.Fatalf("event generation: got %d, want 5", evs[0].Generation)
	}
	if evs[0].Digest != "" {
		t.Fatalf("events should not carry a digest, got %q", evs[0].Digest)
	}
}

func TestRecorderWrap(t *testing.T) {
	// 2 shards x 4 slots = window of 8 records.
	r := NewRecorder(RecorderOptions{Shards: 2, ShardCapacity: 4})
	for n := int64(1); n <= 20; n++ {
		r.Commit(n, 1, "p", EffectPermit, uint64(n), time.Now(), time.Duration(n))
	}
	tail := r.Tail(100)
	if len(tail) != 8 {
		t.Fatalf("wrapped Tail: got %d records, want 8", len(tail))
	}
	for i, rec := range tail {
		if want := uint64(13 + i); rec.Seq != want {
			t.Fatalf("tail[%d].Seq = %d, want %d", i, rec.Seq, want)
		}
	}
	// Asking for fewer returns the newest.
	last := r.Tail(2)
	if len(last) != 2 || last[1].Seq != 20 {
		t.Fatalf("Tail(2) tail: %+v", last)
	}
}

func TestRecorderGenerationTruncation(t *testing.T) {
	r := NewRecorder(RecorderOptions{})
	// Generation wider than the 20-bit field must resolve via the noted
	// table.
	gen := uint64(5 << recGenBits) // low bits zero... use a value with low bits set
	gen |= 0x12345
	r.NoteGeneration(gen, []string{"p"})
	r.Commit(1, gen, "p", EffectPermit, 1, time.Now(), time.Microsecond)
	tail := r.Tail(1)
	if len(tail) != 1 || tail[0].Generation != gen {
		t.Fatalf("wide generation not resolved: %+v", tail)
	}
}

func TestRecorderLatencyClamp(t *testing.T) {
	r := NewRecorder(RecorderOptions{})
	huge := time.Duration(int64(1) << 62)
	r.Commit(1, 1, "p", EffectPermit, 1, time.Now(), huge)
	r.Commit(2, 1, "p", EffectPermit, 1, time.Now(), -time.Second)
	tail := r.Tail(2)
	if tail[0].LatencyNs != int64(recLatMax) {
		t.Fatalf("over-range latency should clamp to %d, got %d", int64(recLatMax), tail[0].LatencyNs)
	}
	if tail[1].LatencyNs != 0 {
		t.Fatalf("negative latency should clamp to 0, got %d", tail[1].LatencyNs)
	}
}

func TestRecorderCloseDropsWrites(t *testing.T) {
	before := runtime.NumGoroutine()
	r := NewRecorder(RecorderOptions{})
	r.Commit(1, 1, "p", EffectPermit, 1, time.Now(), time.Microsecond)
	r.Close()
	if !r.Closed() {
		t.Fatalf("Closed() false after Close")
	}
	r.Commit(2, 1, "p", EffectDeny, 2, time.Now(), time.Microsecond)
	r.Event(EventImportAdopted, "p", 1, time.Microsecond)
	if got := len(r.Tail(10)); got != 1 {
		t.Fatalf("post-close commit should drop, got %d records", got)
	}
	if got := len(r.Events(10)); got != 0 {
		t.Fatalf("post-close event should drop, got %d events", got)
	}
	// The recorder owns no goroutines: open/use/close must not leak.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked across recorder lifecycle: %d -> %d", before, after)
	}
}

// TestRecorderConcurrent hammers the ring from many writers while a
// reader snapshots, under -race in CI. Records are self-describing
// (digest and latency derive from the ordinal) so any torn decode is
// detectable, not just racy.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(RecorderOptions{Shards: 4, ShardCapacity: 64, Window: newWindowed()})
	const writers = 8
	const perWriter = 2000

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, rec := range r.Tail(64) {
				// Self-consistency: latency was written as seq, digest as
				// seq too — a torn slot would disagree.
				if uint64(rec.LatencyNs) != rec.Seq%1000 {
					t.Errorf("torn record: seq=%d latency=%d", rec.Seq, rec.LatencyNs)
					return
				}
			}
			r.Dump(32)
		}
	}()

	var next atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				n := next.Add(1)
				k := uint64(n)
				r.Commit(n, 1, "p", EffectPermit, (k%1000)<<32|k%1000, time.Now(), time.Duration(k%1000))
			}
		}()
	}
	// Writers are done once every commit registered; then stop the reader.
	for r.Stats().Recorded < writers*perWriter {
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()

	if st := r.Stats(); st.Recorded != writers*perWriter {
		t.Fatalf("recorded %d, want %d", st.Recorded, writers*perWriter)
	}
	// Final tail decodes cleanly and in order.
	tail := r.Tail(256)
	if len(tail) == 0 {
		t.Fatalf("empty tail after %d commits", writers*perWriter)
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].Seq <= tail[i-1].Seq {
			t.Fatalf("tail out of order at %d: %d then %d", i, tail[i-1].Seq, tail[i].Seq)
		}
	}
}

func TestRecorderCommitZeroAllocs(t *testing.T) {
	r := NewRecorder(RecorderOptions{Window: newWindowed()})
	now := time.Now()
	n := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		n++
		r.Commit(n, 1, "policy-under-test", EffectPermit, uint64(n), now, 100*time.Nanosecond)
	})
	if allocs != 0 {
		t.Fatalf("Commit allocates %v per op, want 0", allocs)
	}
}

// TestRecorderWindowSpike drives the recorder with explicit timestamps
// and checks the attached rolling window reports the induced latency
// spike in its p99 within one window — the recorder-to-metrics
// integration behind the /metrics acceptance criterion.
func TestRecorderWindowSpike(t *testing.T) {
	w := newWindowed()
	r := NewRecorder(RecorderOptions{Window: w})
	base := time.Unix(1700000000, 0)
	n := int64(0)
	for i := 0; i < 100; i++ {
		n++
		r.Commit(n, 1, "p", EffectPermit, uint64(n), base, 50*time.Microsecond)
	}
	before := w.SnapshotAtNs(base.UnixNano())["10s"]
	if before.Count != 100 || before.P99Ns > int64(200*time.Microsecond) {
		t.Fatalf("steady window wrong: %+v", before)
	}
	spikeAt := base.Add(time.Second)
	for i := 0; i < 10; i++ {
		n++
		r.Commit(n, 1, "p", EffectPermit, uint64(n), spikeAt, 30*time.Millisecond)
	}
	during := w.SnapshotAtNs(spikeAt.UnixNano() + int64(time.Second))["10s"]
	if during.P99Ns < int64(10*time.Millisecond) {
		t.Fatalf("p99 did not move with the spike: before=%d during=%d", before.P99Ns, during.P99Ns)
	}
}

func TestRecorderDumpJSON(t *testing.T) {
	r := NewRecorder(RecorderOptions{LatencySLO: time.Millisecond})
	r.NoteGeneration(3, []string{"p1"})
	r.Commit(1, 3, "p1", EffectPermit, 0xfeed, time.Unix(1700000100, 0), 200*time.Nanosecond)
	r.Event(EventImportAdopted, "p2", 3, time.Microsecond)

	d := r.Dump(10)
	d.Party = "alpha"
	d.Generation = 3
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back AuditDump
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Party != "alpha" || len(back.Records) != 1 || len(back.Events) != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Records[0].PolicyID != "p1" || back.Records[0].Effect != "Permit" {
		t.Fatalf("record round trip: %+v", back.Records[0])
	}
}

func BenchmarkRecorderCommit(b *testing.B) {
	r := NewRecorder(RecorderOptions{Window: newWindowed()})
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Commit(int64(i+1), 1, "bench-policy", EffectPermit, uint64(i), now, 100*time.Nanosecond)
	}
}

func BenchmarkRecorderSampledOut(b *testing.B) {
	r := NewRecorder(RecorderOptions{SampleShift: 10})
	b.ReportAllocs()
	b.ResetTimer()
	acc := 0
	for i := 0; i < b.N; i++ {
		if r.Sampled(int64(i) | 1) {
			acc++
		}
	}
	if acc != 0 {
		b.Fatalf("odd ordinals must not sample at shift 10")
	}
}
